#include "stream/subscription_index.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <utility>

#include "stream/batch.h"

namespace usp {
namespace stream {

namespace {

/// Int64 view of a canonical key string ("17" -> 17); interval
/// subscriptions only apply to keys that are whole int64s.
bool ParseIntKey(const std::string& key, int64_t* out) {
  if (key.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(key.c_str(), &end, 10);
  if (errno != 0 || end != key.c_str() + key.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// SubscriptionIndex
// ---------------------------------------------------------------------------

size_t SubscriptionIndex::Bucket::size() const {
  size_t n = always.size();
  for (const ConditionGroup& g : groups) n += g.entries.size();
  return n;
}

void SubscriptionIndex::InsertIntoBucket(
    Bucket* bucket, SubscriptionId id, const SubscriptionCondition& cond,
    std::shared_ptr<const OnMatchFn> on_match) {
  if (!cond.active) {
    bucket->always.push_back(Entry{0.0, id, std::move(on_match)});
    return;
  }
  for (ConditionGroup& g : bucket->groups) {
    if (g.agg_column == cond.agg_column &&
        g.min_confidence == cond.min_confidence) {
      g.entries.push_back(Entry{cond.threshold, id, std::move(on_match)});
      g.dirty = true;
      return;
    }
  }
  ConditionGroup g;
  g.agg_column = cond.agg_column;
  g.min_confidence = cond.min_confidence;
  g.entries.push_back(Entry{cond.threshold, id, std::move(on_match)});
  bucket->groups.push_back(std::move(g));
}

bool SubscriptionIndex::EraseFromBucket(Bucket* bucket, SubscriptionId id,
                                        const SubscriptionCondition& cond) {
  auto erase_id = [id](std::vector<Entry>* entries) {
    for (auto it = entries->begin(); it != entries->end(); ++it) {
      if (it->id == id) {
        entries->erase(it);
        return true;
      }
    }
    return false;
  };
  if (!cond.active) return erase_id(&bucket->always);
  for (auto git = bucket->groups.begin(); git != bucket->groups.end();
       ++git) {
    if (git->agg_column != cond.agg_column ||
        git->min_confidence != cond.min_confidence) {
      continue;
    }
    if (!erase_id(&git->entries)) return false;
    if (git->entries.empty()) bucket->groups.erase(git);
    return true;
  }
  return false;
}

void SubscriptionIndex::Insert(SubscriptionId id,
                               const SubscriptionSpec& spec,
                               std::shared_ptr<const OnMatchFn> on_match) {
  switch (spec.scope.kind) {
    case SubscriptionScope::Kind::kExact:
      InsertIntoBucket(&exact_[spec.scope.exact_key], id, spec.condition,
                       std::move(on_match));
      break;
    case SubscriptionScope::Kind::kAll:
      InsertIntoBucket(&all_, id, spec.condition, std::move(on_match));
      break;
    case SubscriptionScope::Kind::kIntRange: {
      RangeSub r;
      r.lo = spec.scope.range_lo;
      r.hi = spec.scope.range_hi;
      r.condition = spec.condition;
      r.entry = Entry{spec.condition.threshold, id, std::move(on_match)};
      ranges_.push_back(std::move(r));
      range_index_dirty_ = true;
      break;
    }
  }
  ++subscriptions_;
}

bool SubscriptionIndex::Erase(SubscriptionId id,
                              const SubscriptionSpec& spec) {
  bool erased = false;
  switch (spec.scope.kind) {
    case SubscriptionScope::Kind::kExact: {
      auto it = exact_.find(spec.scope.exact_key);
      if (it == exact_.end()) return false;
      erased = EraseFromBucket(&it->second, id, spec.condition);
      // Refcount-zero release: the bucket (the shared dispatch state for
      // this key) is dropped with its last subscriber.
      if (erased && it->second.empty()) exact_.erase(it);
      break;
    }
    case SubscriptionScope::Kind::kAll:
      erased = EraseFromBucket(&all_, id, spec.condition);
      break;
    case SubscriptionScope::Kind::kIntRange:
      for (auto it = ranges_.begin(); it != ranges_.end(); ++it) {
        if (it->entry.id == id) {
          ranges_.erase(it);
          range_index_dirty_ = true;
          erased = true;
          break;
        }
      }
      break;
  }
  if (erased) --subscriptions_;
  return erased;
}

double SubscriptionIndex::ProbAt(const Tuple& row, const ProbFn& prob,
                                 size_t col, double t) {
  for (size_t i = 0; i < memo_ts_.size(); ++i) {
    if (memo_cols_[i] == static_cast<double>(col) && memo_ts_[i] == t) {
      return memo_probs_[i];
    }
  }
  // Row layout [group_key, agg_1..agg_m]: aggregate column j is value
  // j + 1. Out-of-range columns never fire (the subscription referenced a
  // column the template does not produce).
  const size_t value_index = col + 1;
  const double p = value_index < row.num_values()
                       ? prob(row.value(value_index), t)
                       : -1.0;
  memo_cols_.push_back(static_cast<double>(col));
  memo_ts_.push_back(t);
  memo_probs_.push_back(p);
  return p;
}

void SubscriptionIndex::MatchBucket(Bucket* bucket, const Tuple& row,
                                    const ProbFn& prob,
                                    std::vector<MatchResult>* out) {
  for (const Entry& e : bucket->always) {
    out->push_back(MatchResult{e.id, e.on_match});
  }
  for (ConditionGroup& g : bucket->groups) {
    if (g.dirty) {
      std::sort(g.entries.begin(), g.entries.end(),
                [](const Entry& a, const Entry& b) {
                  return a.threshold != b.threshold ? a.threshold < b.threshold
                                                    : a.id < b.id;
                });
      g.dirty = false;
    }
    // P(X > t) is non-increasing in t, so the subscribers whose condition
    // holds form a prefix of the ascending-threshold order; the boundary
    // costs O(log M) exact probability evaluations (each the same
    // arithmetic a per-query HAVING filter would run, memoised per
    // distinct threshold).
    const size_t col = g.agg_column;
    const double conf = g.min_confidence;
    const auto firing_end = std::partition_point(
        g.entries.begin(), g.entries.end(), [&](const Entry& e) {
          return ProbAt(row, prob, col, e.threshold) >= conf;
        });
    for (auto it = g.entries.begin(); it != firing_end; ++it) {
      out->push_back(MatchResult{it->id, it->on_match});
    }
  }
}

void SubscriptionIndex::EnsureRangeIndex() {
  if (!range_index_dirty_) return;
  range_sorted_.resize(ranges_.size());
  for (size_t i = 0; i < ranges_.size(); ++i) {
    range_sorted_[i] = static_cast<uint32_t>(i);
  }
  std::sort(range_sorted_.begin(), range_sorted_.end(),
            [this](uint32_t a, uint32_t b) {
              return ranges_[a].lo != ranges_[b].lo
                         ? ranges_[a].lo < ranges_[b].lo
                         : ranges_[a].entry.id < ranges_[b].entry.id;
            });
  range_subtree_hi_.assign(ranges_.size(),
                           std::numeric_limits<int64_t>::min());
  if (!ranges_.empty()) BuildRangeNode(0, ranges_.size());
  range_index_dirty_ = false;
}

int64_t SubscriptionIndex::BuildRangeNode(size_t lo, size_t hi) {
  if (lo >= hi) return std::numeric_limits<int64_t>::min();
  const size_t mid = (lo + hi) / 2;
  int64_t max_hi = ranges_[range_sorted_[mid]].hi;
  max_hi = std::max(max_hi, BuildRangeNode(lo, mid));
  max_hi = std::max(max_hi, BuildRangeNode(mid + 1, hi));
  range_subtree_hi_[mid] = max_hi;
  return max_hi;
}

void SubscriptionIndex::QueryRanges(size_t lo, size_t hi, int64_t key,
                                    const Tuple& row, const ProbFn& prob,
                                    std::vector<MatchResult>* out) {
  if (lo >= hi) return;
  const size_t mid = (lo + hi) / 2;
  // Augmented-BST pruning: no interval in this subtree reaches the key.
  if (range_subtree_hi_[mid] < key) return;
  QueryRanges(lo, mid, key, row, prob, out);
  const RangeSub& r = ranges_[range_sorted_[mid]];
  if (r.lo > key) return;  // right subtree's lo values only grow
  if (key <= r.hi) {
    const bool fires =
        !r.condition.active ||
        ProbAt(row, prob, r.condition.agg_column, r.condition.threshold) >=
            r.condition.min_confidence;
    if (fires) out->push_back(MatchResult{r.entry.id, r.entry.on_match});
  }
  QueryRanges(mid + 1, hi, key, row, prob, out);
}

void SubscriptionIndex::MatchRow(const Tuple& row, const ProbFn& prob,
                                 std::vector<MatchResult>* out) {
  if (row.num_values() == 0 || !row.value(0).is_string()) return;
  memo_cols_.clear();
  memo_ts_.clear();
  memo_probs_.clear();
  const std::string& key = row.value(0).AsString();
  const auto it = exact_.find(key);
  if (it != exact_.end()) MatchBucket(&it->second, row, prob, out);
  if (!all_.empty()) MatchBucket(&all_, row, prob, out);
  if (!ranges_.empty()) {
    int64_t int_key = 0;
    if (ParseIntKey(key, &int_key)) {
      EnsureRangeIndex();
      QueryRanges(0, range_sorted_.size(), int_key, row, prob, out);
    }
  }
}

SubscriptionIndex::Stats SubscriptionIndex::GetStats() const {
  Stats s;
  s.subscriptions = subscriptions_;
  s.exact_buckets = exact_.size();
  s.range_entries = ranges_.size();
  s.all_entries = all_.size();
  return s;
}

// ---------------------------------------------------------------------------
// ShardedSubscriptionTable
// ---------------------------------------------------------------------------

ShardedSubscriptionTable::ShardedSubscriptionTable(size_t num_partitions) {
  partitions_.reserve(num_partitions == 0 ? 1 : num_partitions);
  for (size_t i = 0; i < std::max<size_t>(1, num_partitions); ++i) {
    partitions_.push_back(std::make_unique<Partition>());
  }
}

common::Status ShardedSubscriptionTable::Subscribe(SubscriptionId id,
                                                   SubscriptionSpec spec) {
  if (spec.scope.kind == SubscriptionScope::Kind::kIntRange &&
      spec.scope.range_lo > spec.scope.range_hi) {
    return common::Status::InvalidArgument(
        "subscription key range is empty (lo > hi)");
  }
  RegistryEntry entry;
  entry.on_match =
      spec.on_match
          ? std::make_shared<const SubscriptionIndex::OnMatchFn>(
                std::move(spec.on_match))
          : nullptr;
  spec.on_match = nullptr;
  entry.spec = spec;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    if (!registry_.emplace(id, entry).second) {
      return common::Status::InvalidArgument(
          "duplicate subscription id " + std::to_string(id));
    }
  }
  if (spec.scope.kind == SubscriptionScope::Kind::kExact) {
    // Only the partition whose shard owns this key's data ever sees its
    // result rows.
    Partition& p = *partitions_[PartitionOfKey(spec.scope.exact_key)];
    std::lock_guard<std::mutex> lock(p.mu);
    p.index.Insert(id, spec, entry.on_match);
  } else {
    for (auto& part : partitions_) {
      std::lock_guard<std::mutex> lock(part->mu);
      part->index.Insert(id, spec, entry.on_match);
    }
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  return common::Status::OK();
}

bool ShardedSubscriptionTable::Unsubscribe(SubscriptionId id) {
  RegistryEntry entry;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = registry_.find(id);
    if (it == registry_.end()) return false;
    entry = std::move(it->second);
    registry_.erase(it);
  }
  if (entry.spec.scope.kind == SubscriptionScope::Kind::kExact) {
    Partition& p = *partitions_[PartitionOfKey(entry.spec.scope.exact_key)];
    std::lock_guard<std::mutex> lock(p.mu);
    p.index.Erase(id, entry.spec);
  } else {
    for (auto& part : partitions_) {
      std::lock_guard<std::mutex> lock(part->mu);
      part->index.Erase(id, entry.spec);
    }
  }
  count_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void ShardedSubscriptionTable::MatchRow(
    size_t p, const Tuple& row, const SubscriptionIndex::ProbFn& prob,
    std::vector<SubscriptionIndex::MatchResult>* out) {
  Partition& part = *partitions_[p % partitions_.size()];
  std::lock_guard<std::mutex> lock(part.mu);
  part.index.MatchRow(row, prob, out);
}

SubscriptionIndex::Stats ShardedSubscriptionTable::PartitionStats(
    size_t p) const {
  const Partition& part = *partitions_[p % partitions_.size()];
  std::lock_guard<std::mutex> lock(part.mu);
  return part.index.GetStats();
}

SubscriptionIndex::Stats ShardedSubscriptionTable::TotalStats() const {
  SubscriptionIndex::Stats total;
  for (size_t p = 0; p < partitions_.size(); ++p) {
    const SubscriptionIndex::Stats s = PartitionStats(p);
    total.subscriptions += s.subscriptions;
    total.exact_buckets += s.exact_buckets;
    total.range_entries += s.range_entries;
    total.all_entries += s.all_entries;
  }
  return total;
}

// ---------------------------------------------------------------------------
// SubscriptionDispatchOperator
// ---------------------------------------------------------------------------

SubscriptionDispatchOperator::SubscriptionDispatchOperator(
    std::string name, std::shared_ptr<ShardedSubscriptionTable> table,
    size_t partition, SubscriptionIndex::ProbFn prob)
    : Operator(std::move(name)),
      table_(std::move(table)),
      partition_(partition),
      prob_(std::move(prob)) {}

common::Status SubscriptionDispatchOperator::Process(const Tuple& tuple,
                                                     Collector* out) {
  scratch_.clear();
  table_->MatchRow(partition_, tuple, prob_, &scratch_);
  if (scratch_.empty()) return common::Status::OK();
  // Deterministic per-row emission order (the index returns matches in
  // bucket-internal order, which subscribe/unsubscribe churn perturbs).
  std::sort(scratch_.begin(), scratch_.end(),
            [](const SubscriptionIndex::MatchResult& a,
               const SubscriptionIndex::MatchResult& b) {
              return a.id < b.id;
            });
  for (const SubscriptionIndex::MatchResult& m : scratch_) {
    Tuple tagged = tuple;
    tagged.AppendValue(Value(static_cast<int64_t>(m.id)));
    if (m.on_match && *m.on_match) (*m.on_match)(tagged);
    out->Emit(std::move(tagged));
  }
  return common::Status::OK();
}

}  // namespace stream
}  // namespace usp
