#include "stream/schema.h"

namespace usp {
namespace stream {

common::Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return common::Status::NotFound("no field named '" + name + "'");
}

Schema Schema::Extended(std::vector<Field> extra) const {
  std::vector<Field> all = fields_;
  for (auto& f : extra) all.push_back(std::move(f));
  return Schema(std::move(all));
}

std::string Schema::ToString() const {
  std::string s = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) s += ", ";
    s += fields_[i].name;
    s += ": ";
    s += ValueKindName(fields_[i].kind);
  }
  s += ")";
  return s;
}

}  // namespace stream
}  // namespace usp
