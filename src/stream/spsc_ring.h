// Bounded lock-free single-producer/single-consumer ring: the hot edge
// between one ingest lane and one shard worker. The mutex+condvar
// BoundedQueue costs a lock round-trip (and usually a futex wake) per
// message; under multi-producer ingest every one of those serialises the
// lanes. This ring replaces it on the ingest->shard path with two
// cache-line-padded monotonic counters: the producer owns `tail_`, the
// consumer owns `head_`, each caches the other side's counter so the
// common case touches no shared cache line at all.
//
// Contract: exactly ONE thread calls TryPush/Push and exactly ONE thread
// calls TryPop/Pop for the lifetime of the ring (Close() may be called
// from anywhere). T must be default-constructible and movable. Capacity
// is rounded up to a power of two.
//
// Shutdown: Close() makes further pushes fail (Push returns false = the
// loud backpressure path during Finish); items accepted before the close
// remain poppable, so the consumer drains everything that was accepted —
// same no-loss guarantee BoundedQueue gave.

#ifndef USP_STREAM_SPSC_RING_H_
#define USP_STREAM_SPSC_RING_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

namespace usp {
namespace stream {

/// Exponential wait used by blocked ring producers and idle shard workers:
/// spin briefly (the counterpart is usually one batch away), then yield,
/// then sleep in doubling steps up to `max_sleep_us`. Reset() after any
/// progress. Pick the cap by role: a producer blocked on backpressure
/// wants to resume quickly (default 1 ms), while a long-idle consumer
/// should park cheaply rather than poll (pass a larger cap — an idle
/// worker's wakeup rate is 1/max_sleep, so 20 ms ≈ 50 no-op sweeps/sec
/// instead of the 1000/sec a 1 ms cap would burn forever on quiet feeds).
class Backoff {
 public:
  static constexpr int kDefaultMaxSleepUs = 1000;

  explicit Backoff(int max_sleep_us = kDefaultMaxSleepUs)
      : max_sleep_us_(max_sleep_us) {}

  void Pause() {
    if (rounds_ < kSpinRounds) {
      ++rounds_;
      for (int i = 0; i < 32; ++i) {
        // Compiler barrier only; keeps the loop from being optimised away
        // while staying portable (no pause/yield intrinsic dependency).
        std::atomic_signal_fence(std::memory_order_seq_cst);
      }
    } else if (rounds_ < kSpinRounds + kYieldRounds) {
      ++rounds_;
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us_));
      if (sleep_us_ < max_sleep_us_) sleep_us_ *= 2;
    }
  }

  void Reset() {
    rounds_ = 0;
    sleep_us_ = kMinSleepUs;
  }

 private:
  static constexpr int kSpinRounds = 64;
  static constexpr int kYieldRounds = 64;
  static constexpr int kMinSleepUs = 50;

  const int max_sleep_us_;
  int rounds_ = 0;
  int sleep_us_ = kMinSleepUs;
};

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to the next power of two (minimum 1). With
  /// `defer_alloc` the slot array is NOT allocated here: the consumer
  /// thread must call AllocateSlots() before the ring carries traffic, so
  /// the slots are first-touched (page-faulted) on the consumer's core —
  /// core-local under thread pinning. The owner is responsible for
  /// publishing the allocation to the producer before its first push (the
  /// sharded executor's startup latch does this).
  explicit SpscRing(size_t capacity, bool defer_alloc = false) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    if (!defer_alloc) slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Consumer-side half of the deferred-allocation constructor. Idempotent.
  void AllocateSlots() {
    if (slots_.size() != mask_ + 1) slots_.resize(mask_ + 1);
  }

  size_t capacity() const { return mask_ + 1; }

  /// Producer only. Moves `item` into the ring and returns true; returns
  /// false (leaving `item` intact) when the ring is full or closed.
  bool TryPush(T& item) {
    if (closed_.load(std::memory_order_acquire)) return false;
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;  // genuinely full
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer only. Blocks (with backoff) while full — this is the
  /// ingest backpressure. Returns false once the ring is closed.
  bool Push(T item) {
    Backoff backoff;
    while (!TryPush(item)) {
      if (closed_.load(std::memory_order_acquire)) return false;
      backoff.Pause();
    }
    return true;
  }

  /// Consumer only. Non-blocking; nullopt when currently empty.
  std::optional<T> TryPop() {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return std::nullopt;
    }
    std::optional<T> out(std::move(slots_[head & mask_]));
    slots_[head & mask_] = T();  // release the slot's resources eagerly
    head_.store(head + 1, std::memory_order_release);
    return out;
  }

  /// Consumer only. Blocks (with backoff) while empty; nullopt once the
  /// ring is closed AND drained.
  std::optional<T> Pop() {
    Backoff backoff;
    while (true) {
      if (auto item = TryPop()) return item;
      if (closed_.load(std::memory_order_acquire)) {
        // A push may have raced the close; one more look drains it.
        if (auto item = TryPop()) return item;
        return std::nullopt;
      }
      backoff.Pause();
    }
  }

  /// Any thread. No further pushes succeed; pops drain accepted items.
  void Close() { closed_.store(true, std::memory_order_release); }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Approximate occupancy (either side may move concurrently).
  size_t size() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  /// Consumer-owned line: position + cached producer counter.
  alignas(64) std::atomic<uint64_t> head_{0};
  uint64_t tail_cache_ = 0;
  /// Producer-owned line: position + cached consumer counter.
  alignas(64) std::atomic<uint64_t> tail_{0};
  uint64_t head_cache_ = 0;
  alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace stream
}  // namespace usp

#endif  // USP_STREAM_SPSC_RING_H_
