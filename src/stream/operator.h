// The box of the box-arrow paradigm (§3): a push-based operator that
// consumes tuples and emits tuples into a Collector. Per-operator metrics
// (tuple counts, processing time) are collected for the benches.

#ifndef USP_STREAM_OPERATOR_H_
#define USP_STREAM_OPERATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "stream/tuple.h"

namespace usp {
namespace stream {

class TupleBatch;

/// Downstream sink an operator emits into.
class Collector {
 public:
  virtual ~Collector() = default;
  virtual void Emit(Tuple tuple) = 0;
};

/// Collector that appends into a vector (used by Pipeline and tests).
class VectorCollector final : public Collector {
 public:
  void Emit(Tuple tuple) override { tuples_.push_back(std::move(tuple)); }
  std::vector<Tuple>& tuples() { return tuples_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  void Clear() { tuples_.clear(); }

 private:
  std::vector<Tuple> tuples_;
};

/// Collector that invokes a callback per tuple.
class CallbackCollector final : public Collector {
 public:
  explicit CallbackCollector(std::function<void(Tuple)> fn)
      : fn_(std::move(fn)) {}
  void Emit(Tuple tuple) override { fn_(std::move(tuple)); }

 private:
  std::function<void(Tuple)> fn_;
};

/// Cumulative per-operator counters.
///
/// Under the sharded executor each shard owns a private operator instance
/// (and therefore a private OperatorMetrics); snapshots merge the per-shard
/// structs with MergeFrom rather than sharing one mutable struct across
/// threads.
struct OperatorMetrics {
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  uint64_t batches_in = 0;
  double processing_seconds = 0.0;

  // Ingest-side counters, populated only on the source-node entries the
  // sharded executor appends to its MetricsSnapshot(). They make
  // backpressure observable instead of inferred: block time says how long
  // producers waited on full shard rings, peak depth says how close the
  // rings came to full.
  /// Total time this source's producer spent blocked pushing into full
  /// shard queues (the backpressure path).
  double producer_block_seconds = 0.0;
  /// Highest per-(lane, shard) queue occupancy observed at enqueue time,
  /// in batches.
  uint64_t queue_peak_depth = 0;

  // Event-time progress + buffered-state gauges.
  /// Last watermark this operator observed (INT64_MIN before any — also
  /// the merged value when any shard has yet to see one, which is the
  /// correct conservative minimum).
  int64_t low_watermark = INT64_MIN;
  /// Approximate bytes of buffered operator state (open windows, join
  /// buffers, pane partials), per Tuple::ApproxBytes. A gauge, not a
  /// counter: it tracks current occupancy, so silent buffer growth (e.g.
  /// a join peer outrunning an idle source) is observable.
  uint64_t buffered_bytes = 0;

  // Cross-group CF grid cache counters (aggregate operators over CF
  // inversion only; see stats::CfGridCache). A hit means one CfGrid
  // evaluation another group already paid for.
  uint64_t grid_cache_hits = 0;
  uint64_t grid_cache_misses = 0;

  void MergeFrom(const OperatorMetrics& other) {
    tuples_in += other.tuples_in;
    tuples_out += other.tuples_out;
    batches_in += other.batches_in;
    processing_seconds += other.processing_seconds;
    producer_block_seconds += other.producer_block_seconds;
    queue_peak_depth = queue_peak_depth > other.queue_peak_depth
                           ? queue_peak_depth
                           : other.queue_peak_depth;
    low_watermark =
        low_watermark < other.low_watermark ? low_watermark
                                            : other.low_watermark;
    buffered_bytes += other.buffered_bytes;
    grid_cache_hits += other.grid_cache_hits;
    grid_cache_misses += other.grid_cache_misses;
  }
};

/// \brief Base class for unary stream operators.
///
/// Contract: Process() is called once per input tuple in timestamp order;
/// Finish() is called once at end-of-stream and must flush any buffered
/// state (open windows, pending joins).
class Operator {
 public:
  explicit Operator(std::string name) : name_(std::move(name)) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  const std::string& name() const { return name_; }
  const OperatorMetrics& metrics() const { return metrics_; }

  /// Consume one tuple, emitting zero or more results.
  common::Status Push(const Tuple& tuple, Collector* out);
  /// Consume a whole batch. Metrics are metered once per batch, so this is
  /// the hot path for the DAG executor; the default implementation calls
  /// Process() per tuple, subclasses may override ProcessBatch() with a
  /// vectorised loop.
  common::Status PushBatch(const TupleBatch& batch, Collector* out);
  /// Event-time progress: the executor promises every future input tuple
  /// has timestamp >= `watermark`. Stateful operators close windows and
  /// expire buffers here (emissions go to `out`); the default is a no-op
  /// for stateless operators. The executor forwards the watermark along
  /// graph edges itself — operators never re-emit it. Monotonic: the
  /// executor only delivers advances.
  common::Status AdvanceWatermark(int64_t watermark, Collector* out);
  /// End-of-stream: flush buffered state.
  common::Status Close(Collector* out);

 protected:
  virtual common::Status Process(const Tuple& tuple, Collector* out) = 0;
  /// Batch hook; default loops over Process(). Emissions go to `out`.
  virtual common::Status ProcessBatch(const TupleBatch& batch, Collector* out);
  /// Watermark hook; default no-op (stateless operators).
  virtual common::Status OnWatermark(int64_t watermark, Collector* out) {
    (void)watermark;
    (void)out;
    return common::Status::OK();
  }
  virtual common::Status Finish(Collector* out) {
    (void)out;
    return common::Status::OK();
  }
  /// For subclasses maintaining the buffered_bytes/low_watermark gauges.
  OperatorMetrics& mutable_metrics() { return metrics_; }

 private:
  // Counting wrapper so subclasses' emissions are metered.
  class CountingCollector;

  std::string name_;
  OperatorMetrics metrics_;
};

}  // namespace stream
}  // namespace usp

#endif  // USP_STREAM_OPERATOR_H_
