// Windowed GROUP BY + aggregate + HAVING — the shape of the paper's Q1:
//   Group By R2.area  Having sum(R2.weight) > 200 pounds
// over a `[Range 5 seconds]` window. The aggregate functions are supplied
// by the caller (the uncertain:: library provides SUM/MAX over
// distribution-valued attributes), so this operator stays agnostic of the
// uncertainty machinery.

#ifndef USP_STREAM_GROUP_BY_H_
#define USP_STREAM_GROUP_BY_H_

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "stream/window.h"

namespace usp {
namespace stream {

/// One output aggregate column.
struct AggregateSpec {
  std::string output_name;
  /// Computes the aggregate value over a group's tuples (arrival order).
  std::function<common::Result<Value>(const std::vector<const Tuple*>&)> fn;
};

/// \brief Windowed group-by-aggregate with an optional HAVING filter.
///
/// Output tuple layout: [group_key (string), agg_1, ..., agg_m], timestamp
/// = window end (Rstream semantics: results are streamed when the window
/// closes), lineage = union of the group's input lineage.
///
/// On the batch path, group keys are computed once per batch tuple and
/// cached per window, so a sliding window with overlap k evaluates the key
/// function once per tuple instead of k times at emit.
class GroupByAggregateOperator final : public WindowedOperator {
 public:
  using KeyFn = std::function<std::string(const Tuple&)>;
  using HavingFn = std::function<bool(const Tuple&)>;

  GroupByAggregateOperator(std::string name, WindowSpec spec, KeyFn key_fn,
                           std::vector<AggregateSpec> aggregates,
                           HavingFn having = nullptr)
      : WindowedOperator(std::move(name), spec),
        key_fn_(std::move(key_fn)),
        aggregates_(std::move(aggregates)),
        having_(std::move(having)) {}

  /// Metrics hook: reads the shard's cross-group CF grid-cache counters
  /// (hits, misses); same contract as
  /// PanedGroupByAggregateOperator::set_grid_cache_probe.
  using GridCacheProbe = std::function<std::pair<uint64_t, uint64_t>()>;
  void set_grid_cache_probe(GridCacheProbe probe) {
    grid_cache_probe_ = std::move(probe);
  }

 protected:
  common::Status ProcessBatch(const TupleBatch& batch,
                              Collector* out) override;
  common::Status EmitWindow(int64_t window_start, int64_t window_end,
                            const std::vector<Tuple>& tuples,
                            Collector* out) override;
  void AppendRun(int64_t window_start, const Tuple* tuples, size_t count,
                 size_t batch_offset) override;

 private:
  KeyFn key_fn_;
  std::vector<AggregateSpec> aggregates_;
  HavingFn having_;
  GridCacheProbe grid_cache_probe_;
  /// Per-window cached group keys, aligned with the window's tuple buffer.
  std::map<int64_t, std::vector<std::string>> open_keys_;
  /// Keys of the batch currently inside WindowedOperator::ProcessBatch;
  /// AppendRun slices it by batch offset. Empty on the per-tuple path.
  std::vector<std::string> batch_keys_;
};

}  // namespace stream
}  // namespace usp

#endif  // USP_STREAM_GROUP_BY_H_
