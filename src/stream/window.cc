#include "stream/window.h"

#include <cassert>

#include "stream/batch.h"

namespace usp {
namespace stream {

std::vector<int64_t> WindowSpec::AssignedWindowStarts(int64_t ts) const {
  assert(size_us > 0 && slide_us > 0 && slide_us <= size_us);
  std::vector<int64_t> starts;
  ForEachAssignedStart(ts, [&starts](int64_t start) {
    starts.push_back(start);
  });
  return starts;  // descending start order
}

common::Status WindowedOperator::CloseWindowsBefore(int64_t ts,
                                                    Collector* out) {
  while (!open_.empty()) {
    const auto it = open_.begin();
    const int64_t start = it->first;
    const int64_t end = start + spec_.size_us;
    if (end > ts) break;
    // Move the buffer out before the callback so re-entrant emissions
    // cannot invalidate the iterator.
    std::vector<Tuple> buf = std::move(it->second);
    open_.erase(it);
    USP_RETURN_NOT_OK(EmitWindow(start, end, buf, out));
  }
  return common::Status::OK();
}

void WindowedOperator::AppendRun(int64_t window_start, const Tuple* tuples,
                                 size_t count, size_t batch_offset) {
  (void)batch_offset;
  std::vector<Tuple>& buf = open_[window_start];
  buf.insert(buf.end(), tuples, tuples + count);
}

common::Status WindowedOperator::Process(const Tuple& tuple, Collector* out) {
  USP_RETURN_NOT_OK(CloseWindowsBefore(tuple.timestamp(), out));
  spec_.ForEachAssignedStart(tuple.timestamp(), [this, &tuple](int64_t start) {
    AppendRun(start, &tuple, 1, SIZE_MAX);
  });
  return common::Status::OK();
}

common::Status WindowedOperator::ProcessBatch(const TupleBatch& batch,
                                              Collector* out) {
  const size_t n = batch.size();
  size_t i = 0;
  while (i < n) {
    const int64_t ts = batch[i].timestamp();
    USP_RETURN_NOT_OK(CloseWindowsBefore(ts, out));
    const int64_t first = spec_.FirstAssignedStart(ts);
    const int64_t last = spec_.LastAssignedStart(ts);
    // Extend the run while consecutive tuples land in the same window
    // range. Tuples are timestamp-ordered, so the range is non-decreasing;
    // equality of the (first, last) pair is the run condition. Deferring
    // the closure check to the next run is safe: a window whose end falls
    // inside the run cannot contain any run tuple (its start would be
    // < first), appends emit nothing, and closures stay in ascending
    // window order.
    size_t j = i + 1;
    while (j < n && spec_.LastAssignedStart(batch[j].timestamp()) == last &&
           spec_.FirstAssignedStart(batch[j].timestamp()) == first) {
      ++j;
    }
    for (int64_t start = last; start >= first; start -= spec_.slide_us) {
      AppendRun(start, &batch.tuples()[i], j - i, i);
    }
    i = j;
  }
  return common::Status::OK();
}

common::Status WindowedOperator::Finish(Collector* out) {
  while (!open_.empty()) {
    const auto it = open_.begin();
    const int64_t start = it->first;
    const int64_t end = start + spec_.size_us;
    std::vector<Tuple> buf = std::move(it->second);
    open_.erase(it);
    USP_RETURN_NOT_OK(EmitWindow(start, end, buf, out));
  }
  return common::Status::OK();
}

common::Status WindowCountOperator::EmitWindow(int64_t window_start,
                                               int64_t window_end,
                                               const std::vector<Tuple>& tuples,
                                               Collector* out) {
  (void)window_start;
  Tuple result(window_end,
               {Value(static_cast<int64_t>(tuples.size()))});
  std::vector<TupleId> lineage;
  for (const Tuple& t : tuples) {
    lineage.insert(lineage.end(), t.lineage().begin(), t.lineage().end());
  }
  result.SetLineage(std::move(lineage));
  out->Emit(std::move(result));
  return common::Status::OK();
}

}  // namespace stream
}  // namespace usp
