#include "stream/window.h"

#include <cassert>

#include "stream/batch.h"

namespace usp {
namespace stream {

std::vector<int64_t> WindowSpec::AssignedWindowStarts(int64_t ts) const {
  // slide > size (sampling windows with gaps) is legal here: a timestamp
  // falling in a gap is simply assigned to no window.
  assert(size_us > 0 && slide_us > 0);
  std::vector<int64_t> starts;
  ForEachAssignedStart(ts, [&starts](int64_t start) {
    starts.push_back(start);
  });
  return starts;  // descending start order
}

common::Status WindowedOperator::EmitEarliest(Collector* out) {
  const auto it = open_.begin();
  const int64_t start = it->first;
  const int64_t end = start + spec_.size_us;
  // Move the buffer out before the callback so re-entrant emissions
  // cannot invalidate the iterator.
  std::vector<Tuple> buf = std::move(it->second);
  open_.erase(it);
  for (const Tuple& t : buf) {
    const uint64_t bytes = t.ApproxBytes();
    buffered_bytes_ -= bytes < buffered_bytes_ ? bytes : buffered_bytes_;
  }
  mutable_metrics().buffered_bytes = buffered_bytes_;
  return EmitWindow(start, end, buf, out);
}

common::Status WindowedOperator::CloseWindowsBefore(int64_t ts,
                                                    Collector* out) {
  while (!open_.empty()) {
    if (open_.begin()->first + spec_.size_us > ts) break;
    USP_RETURN_NOT_OK(EmitEarliest(out));
  }
  return common::Status::OK();
}

common::Status CheckTupleNotBelowWatermark(const std::string& op_name,
                                           const WindowSpec& spec,
                                           int64_t applied_watermark,
                                           int64_t ts) {
  // A tuple's earliest containing window ends at FirstAssignedStart +
  // size; if even that has closed under the applied watermark, the tuple
  // can only re-open an already-emitted window.
  if (applied_watermark != INT64_MIN &&
      spec.FirstAssignedStart(ts) + spec.size_us <= applied_watermark) {
    return common::Status::Internal(
        "operator '" + op_name + "': tuple at ts " + std::to_string(ts) +
        " arrived below the applied watermark " +
        std::to_string(applied_watermark) +
        " and its windows already closed; the upstream (a join MatchFn?) "
        "must stamp outputs at >= the matched pair's max timestamp so "
        "they never regress below the propagated watermark");
  }
  return common::Status::OK();
}

void WindowedOperator::AppendRun(int64_t window_start, const Tuple* tuples,
                                 size_t count, size_t batch_offset) {
  (void)batch_offset;
  std::vector<Tuple>& buf = open_[window_start];
  buf.insert(buf.end(), tuples, tuples + count);
  if (!run_bytes_valid_) {
    // Measure the STORED copies, not the source tuples: the source may
    // carry excess vector capacity the exact-sized copies do not, and
    // EmitEarliest refunds by measuring the stored copies — charging the
    // same objects keeps the gauge drift-free. Copies of one source
    // tuple are layout-identical across windows, so one run sum serves
    // every overlapping window.
    run_bytes_ = 0;
    for (size_t i = buf.size() - count; i < buf.size(); ++i) {
      run_bytes_ += buf[i].ApproxBytes();
    }
    run_bytes_valid_ = true;
  }
  buffered_bytes_ += run_bytes_;
  mutable_metrics().buffered_bytes = buffered_bytes_;
}

common::Status WindowedOperator::CheckNotBelowWatermark(int64_t ts) const {
  if (!watermark_only_closure_) return common::Status::OK();
  return CheckTupleNotBelowWatermark(name(), spec_, applied_watermark_, ts);
}

common::Status WindowedOperator::Process(const Tuple& tuple, Collector* out) {
  if (!watermark_only_closure_) {
    USP_RETURN_NOT_OK(CloseWindowsBefore(tuple.timestamp(), out));
  }
  USP_RETURN_NOT_OK(CheckNotBelowWatermark(tuple.timestamp()));
  run_bytes_valid_ = false;  // new run: one tuple, all its windows
  spec_.ForEachAssignedStart(tuple.timestamp(), [this, &tuple](int64_t start) {
    AppendRun(start, &tuple, 1, SIZE_MAX);
  });
  return common::Status::OK();
}

common::Status WindowedOperator::OnWatermark(int64_t watermark,
                                             Collector* out) {
  // The watermark promises no future tuple has ts < watermark, so every
  // window ending at or below it is complete — the same closure rule the
  // arrival path applies with the arriving tuple's timestamp, which keeps
  // the two paths' outputs identical on ordered input.
  if (watermark > applied_watermark_) applied_watermark_ = watermark;
  return CloseWindowsBefore(watermark, out);
}

common::Status WindowedOperator::ProcessBatch(const TupleBatch& batch,
                                              Collector* out) {
  const size_t n = batch.size();
  size_t i = 0;
  while (i < n) {
    const int64_t ts = batch[i].timestamp();
    if (!watermark_only_closure_) {
      USP_RETURN_NOT_OK(CloseWindowsBefore(ts, out));
    }
    USP_RETURN_NOT_OK(CheckNotBelowWatermark(ts));
    const int64_t first = spec_.FirstAssignedStart(ts);
    const int64_t last = spec_.LastAssignedStart(ts);
    // Extend the run while consecutive tuples land in the same window
    // range. Tuples are timestamp-ordered, so the range is non-decreasing;
    // equality of the (first, last) pair is the run condition. Deferring
    // the closure check to the next run is safe: a window whose end falls
    // inside the run cannot contain any run tuple (its start would be
    // < first), appends emit nothing, and closures stay in ascending
    // window order.
    size_t j = i + 1;
    while (j < n && spec_.LastAssignedStart(batch[j].timestamp()) == last &&
           spec_.FirstAssignedStart(batch[j].timestamp()) == first) {
      ++j;
    }
    run_bytes_valid_ = false;  // same run across the start loop below
    for (int64_t start = last; start >= first; start -= spec_.slide_us) {
      AppendRun(start, &batch.tuples()[i], j - i, i);
    }
    i = j;
  }
  return common::Status::OK();
}

common::Status WindowedOperator::Finish(Collector* out) {
  while (!open_.empty()) {
    USP_RETURN_NOT_OK(EmitEarliest(out));
  }
  return common::Status::OK();
}

common::Status WindowCountOperator::EmitWindow(int64_t window_start,
                                               int64_t window_end,
                                               const std::vector<Tuple>& tuples,
                                               Collector* out) {
  (void)window_start;
  Tuple result(window_end,
               {Value(static_cast<int64_t>(tuples.size()))});
  std::vector<TupleId> lineage;
  for (const Tuple& t : tuples) {
    lineage.insert(lineage.end(), t.lineage().begin(), t.lineage().end());
  }
  result.SetLineage(std::move(lineage));
  out->Emit(std::move(result));
  return common::Status::OK();
}

}  // namespace stream
}  // namespace usp
