#include "stream/window.h"

#include <cassert>

namespace usp {
namespace stream {

std::vector<int64_t> WindowSpec::AssignedWindowStarts(int64_t ts) const {
  assert(size_us > 0 && slide_us > 0 && slide_us <= size_us);
  std::vector<int64_t> starts;
  // Latest window start containing ts (floor division robust for ts < 0).
  int64_t k = ts / slide_us;
  if (ts < 0 && ts % slide_us != 0) --k;
  int64_t start = k * slide_us;
  // Walk back while the window still contains ts.
  while (start + size_us > ts) {
    starts.push_back(start);
    start -= slide_us;
  }
  return starts;  // descending start order
}

common::Status WindowedOperator::CloseWindowsBefore(int64_t ts,
                                                    Collector* out) {
  while (!open_.empty()) {
    const auto it = open_.begin();
    const int64_t start = it->first;
    const int64_t end = start + spec_.size_us;
    if (end > ts) break;
    // Move the buffer out before the callback so re-entrant emissions
    // cannot invalidate the iterator.
    std::vector<Tuple> buf = std::move(it->second);
    open_.erase(it);
    USP_RETURN_NOT_OK(EmitWindow(start, end, buf, out));
  }
  return common::Status::OK();
}

common::Status WindowedOperator::Process(const Tuple& tuple, Collector* out) {
  USP_RETURN_NOT_OK(CloseWindowsBefore(tuple.timestamp(), out));
  for (int64_t start : spec_.AssignedWindowStarts(tuple.timestamp())) {
    open_[start].push_back(tuple);
  }
  return common::Status::OK();
}

common::Status WindowedOperator::Finish(Collector* out) {
  while (!open_.empty()) {
    const auto it = open_.begin();
    const int64_t start = it->first;
    const int64_t end = start + spec_.size_us;
    std::vector<Tuple> buf = std::move(it->second);
    open_.erase(it);
    USP_RETURN_NOT_OK(EmitWindow(start, end, buf, out));
  }
  return common::Status::OK();
}

common::Status WindowCountOperator::EmitWindow(int64_t window_start,
                                               int64_t window_end,
                                               const std::vector<Tuple>& tuples,
                                               Collector* out) {
  (void)window_start;
  Tuple result(window_end,
               {Value(static_cast<int64_t>(tuples.size()))});
  std::vector<TupleId> lineage;
  for (const Tuple& t : tuples) {
    lineage.insert(lineage.end(), t.lineage().begin(), t.lineage().end());
  }
  result.SetLineage(std::move(lineage));
  out->Emit(std::move(result));
  return common::Status::OK();
}

}  // namespace stream
}  // namespace usp
