#include "stream/value.h"

#include <cassert>
#include <cstdio>

namespace usp {
namespace stream {

const char* ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kInt:
      return "int";
    case ValueKind::kDouble:
      return "double";
    case ValueKind::kString:
      return "string";
    case ValueKind::kDistribution:
      return "distribution";
  }
  return "?";
}

double Value::ExpectedValue() const {
  switch (kind()) {
    case ValueKind::kInt:
      return static_cast<double>(std::get<int64_t>(data_));
    case ValueKind::kDouble:
      return std::get<double>(data_);
    case ValueKind::kDistribution:
      return std::get<stats::DistributionPtr>(data_)->Mean();
    default:
      assert(false && "ExpectedValue on non-numeric Value");
      return 0.0;
  }
}

std::string CanonicalKeyString(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kString:
      return v.AsString();
    case ValueKind::kInt:
      return std::to_string(v.AsInt());
    case ValueKind::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
      return buf;
    }
    case ValueKind::kNull:
      return "null";
    case ValueKind::kDistribution:
      return v.ToString();
  }
  return "?";
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kInt: {
      char buf[24];
      snprintf(buf, sizeof(buf), "%lld",
               static_cast<long long>(std::get<int64_t>(data_)));
      return buf;
    }
    case ValueKind::kDouble: {
      char buf[32];
      snprintf(buf, sizeof(buf), "%.6g", std::get<double>(data_));
      return buf;
    }
    case ValueKind::kString:
      return "\"" + std::get<std::string>(data_) + "\"";
    case ValueKind::kDistribution:
      return std::get<stats::DistributionPtr>(data_)->ToString();
  }
  return "?";
}

bool Value::operator==(const Value& other) const {
  if (kind() != other.kind()) return false;
  switch (kind()) {
    case ValueKind::kNull:
      return true;
    case ValueKind::kInt:
      return AsInt() == other.AsInt();
    case ValueKind::kDouble:
      return std::get<double>(data_) == std::get<double>(other.data_);
    case ValueKind::kString:
      return AsString() == other.AsString();
    case ValueKind::kDistribution:
      // Identity comparison: distributions are shared immutable handles.
      return AsDistribution().get() == other.AsDistribution().get();
  }
  return false;
}

}  // namespace stream
}  // namespace usp
