// Key-sharded, multi-threaded DAG runtime with lock-free parallel ingest.
//
// The executor owns N shards; each shard runs a private copy of the plan
// (its own ExecGraph + operator instances, its own TupleArchive) on a
// dedicated worker thread. Ingest runs through L *lanes*: a lane is one
// producer thread's private ingest channel, connected to every shard by a
// bounded lock-free SPSC ring — one ring per (lane, shard) pair — so
// after the caller enters PushBatch no lock is ever taken on the way to a
// shard. Multi-sensor feeds (radar A + radar B + RFID readers) each own a
// lane and push concurrently from their own threads.
//
// Ordering contract: each source node must be fed through exactly ONE
// lane (enforced: a push that re-binds a source to a different lane fails
// with InvalidArgument). Lane FIFO + per-source sequence numbers then
// guarantee every shard observes each source's tuples in that source's
// timestamp arrival order — the DSMS contract windowed operators rely on.
// There is no cross-SOURCE ordering guarantee once lanes run in parallel;
// operators downstream of a single source are unaffected, and fan-in
// joins buffer by time range so their result SET is interleaving-
// independent (emission order is not — under skew it regresses in
// timestamp, so an operator that needs cross-source timestamp order,
// e.g. a windowed aggregate downstream of a join, must be fed through a
// single lane; the query planner enforces exactly that).
// Workers verify the per-source sequence numbers and fail the shard
// loudly on a violation instead of silently mis-windowing.
//
// Each shard hash-partitions nothing itself — partitioning happens on the
// lane's producer thread — and all tuples of one key are processed by one
// shard: keyed plans (group-by, keyed joins, lineage resolution against
// the shard archive) need no cross-shard coordination, and the result SET
// is independent of both the shard count and the lane count (merged
// output is timestamp-sorted; equal-timestamp tie order follows shard
// assignment and worker interleaving).
//
// Thread safety: PushBatch(lane, ...) is single-producer PER LANE — two
// threads may push concurrently only on different lanes. The lane-less
// overloads use lane 0 (the seed single-caller API, unchanged).
//
// Metrics: every shard's operator instances accumulate private
// OperatorMetrics; MetricsSnapshot() merges them under the shard locks
// and appends one entry per source node carrying the ingest counters
// (tuples/batches enqueued, producer block time, peak queue depth), so
// backpressure is observable instead of inferred.
//
// Archives: each shard exposes a TupleArchive to the plan builder; the
// worker advances a per-shard watermark (max timestamp seen) and evicts
// archived tuples older than `watermark - archive_retention_us` after
// each message, bounding archive memory without any global pause.

#ifndef USP_STREAM_SHARDED_EXECUTOR_H_
#define USP_STREAM_SHARDED_EXECUTOR_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "stats/characteristic_function.h"
#include "stream/exec_graph.h"
#include "stream/pipeline.h"
#include "stream/spsc_ring.h"
#include "stream/watermark.h"

namespace usp {
namespace stream {

/// Everything a plan builder may bind shard-locally.
struct ShardContext {
  size_t shard_index = 0;
  size_t num_shards = 1;
  /// Shard-private archive for lineage resolution; evicted by watermark.
  TupleArchive* archive = nullptr;
  /// Shard-private scratch for CF inversion / order-statistics grids.
  /// Owned by the shard and touched only from its worker thread; plan
  /// builders hand it to CfInversionSum::set_workspace or the pane
  /// aggregates so the per-window hot loop is allocation-free.
  stats::CfInversionWorkspace* cf_workspace = nullptr;
};

class ShardedExecutor {
 public:
  /// One producer thread's private ingest channel (index into the lanes).
  using LaneId = size_t;

  struct Options {
    size_t num_shards = 1;
    /// Parallel ingest lanes. Each lane accepts pushes from exactly one
    /// producer thread at a time and owns one SPSC ring per shard; bind
    /// each source to its own lane to ingest multi-sensor feeds
    /// concurrently.
    size_t num_ingest_lanes = 1;
    /// Bounded ring depth, in batches, per (lane, shard) pair (rounded up
    /// to a power of two; producers block beyond = backpressure).
    size_t queue_capacity = 64;
    /// Archived tuples older than watermark - retention are evicted after
    /// each processed message; negative = keep everything.
    int64_t archive_retention_us = -1;
    /// When > 0, ingest re-batches caller pushes toward this many tuples
    /// before partitioning: oversized batches are split into target-sized
    /// slices (bounding per-message queue occupancy and shard latency for
    /// bulk pushes), and undersized consecutive batches for the same
    /// source are merged in a lane-local buffer until a target-sized
    /// slice fills (amortising per-batch queue/dispatch overhead for
    /// trickle feeds). The buffer is flushed when the lane's source
    /// changes (preserving cross-source arrival order within the lane)
    /// and at Finish(), so merging trades bounded latency — at most one
    /// flush — for throughput. 0 forwards caller-sized batches unchanged
    /// (unless auto_target_batch_size is set).
    size_t target_batch_size = 0;
    /// Feedback tuner: derive the re-batching target from observed
    /// per-tuple operator cost (per-shard OperatorMetrics) instead of a
    /// fixed count. Every ~32k ingested tuples the target is re-chosen so
    /// one batch carries roughly kTargetBatchCostSeconds of downstream
    /// work, clamped to [kMinAutoBatch, kMaxAutoBatch]. target_batch_size
    /// (or kDefaultInitialBatch when 0) seeds the first interval. Results
    /// are batching-invariant, so tuning never changes the result set.
    bool auto_target_batch_size = false;
    /// Event-time watermark generation period per source, in event-time
    /// microseconds; 0 disables generation (explicit PushWatermark still
    /// works). When a source's max ingested timestamp minus
    /// `watermark_lateness_us` has advanced at least this far past its
    /// last emitted watermark, the lane broadcasts a watermark message to
    /// EVERY shard (partitioning splits a source's tuples across shards,
    /// so each shard must hear the source's progress) and the per-shard
    /// DagExecutor propagates it along the graph edges.
    int64_t watermark_period_us = 0;
    /// Slack subtracted from the max ingested timestamp when generating a
    /// watermark: the promise becomes "no future tuple below max - L".
    /// Weakens only the promise (delaying watermark-gated closure and
    /// expiry); the arrival-driven paths still require per-source
    /// timestamp order. 0 matches that contract exactly.
    int64_t watermark_lateness_us = 0;
    /// Pin threads to distinct cores (Linux only; elsewhere a no-op):
    /// shard worker i -> core i % ncpu, and the producer thread of lane l
    /// -> core (num_shards + l) % ncpu on its FIRST push (the executor
    /// never owns producer threads, so the pin rides the push; a caller
    /// that pushes one lane from several threads over time — legal as
    /// long as pushes don't overlap — gets only the first thread pinned).
    /// Ring slot arrays and the shard's CF workspace are then
    /// first-touched from the pinned worker, so the hot consumer-side
    /// state is core-local. The planner enables this automatically on
    /// sharded plans when the machine has >= 4 hardware threads.
    bool pin_threads = false;
  };

  static constexpr size_t kDefaultInitialBatch = 256;
  static constexpr size_t kMinAutoBatch = 16;
  static constexpr size_t kMaxAutoBatch = 8192;
  static constexpr double kTargetBatchCostSeconds = 1e-3;
  static constexpr uint64_t kTuneIntervalTuples = 32 * 1024;

  /// Maps a tuple to a shard-key hash; the shard is `hash % num_shards`.
  /// Must be pure: same tuple -> same key on every call and thread.
  using KeyFn = std::function<uint64_t(const Tuple&)>;

  /// Builds one shard's plan. Runs once per shard at Create() time; must
  /// be deterministic so every shard gets the same node numbering.
  using PlanBuilder =
      std::function<common::Status(ExecGraph* graph, const ShardContext& ctx)>;

  /// Builds the per-shard graphs (validated) and starts the workers.
  static common::Result<std::unique_ptr<ShardedExecutor>> Create(
      const Options& options, KeyFn key_fn, const PlanBuilder& builder);

  ~ShardedExecutor();

  ShardedExecutor(const ShardedExecutor&) = delete;
  ShardedExecutor& operator=(const ShardedExecutor&) = delete;

  /// Partition a batch by shard key on the calling thread and enqueue the
  /// per-shard sub-batches on `lane`'s rings. Single producer per lane;
  /// the source becomes bound to `lane` on first push and may not move.
  common::Status PushBatch(LaneId lane, ExecGraph::NodeId source,
                           TupleBatch&& batch);
  common::Status PushBatch(LaneId lane, ExecGraph::NodeId source,
                           const TupleBatch& batch);

  /// Event-time progress for one source: promises every future tuple
  /// pushed for `source` has timestamp >= watermark. Broadcast to every
  /// shard in ingest order (a pending lane-local merge buffer for this
  /// source is flushed first, so a watermark can never overtake data it
  /// covers). The explicit entry point for IDLE sources — a sensor outage
  /// stops data, not progress — which is what keeps the peer side of a
  /// join bounded; periodic generation (Options::watermark_period_us)
  /// covers live sources automatically. Same single-producer-per-lane
  /// contract as PushBatch; monotonic per source (regressions are
  /// ignored).
  common::Status PushWatermark(LaneId lane, ExecGraph::NodeId source,
                               int64_t watermark);
  /// Lane-0 convenience overload.
  common::Status PushWatermark(ExecGraph::NodeId source, int64_t watermark);

  /// Single-caller convenience API: lane 0.
  common::Status PushBatch(ExecGraph::NodeId source, const TupleBatch& batch);
  /// Move ingest: tuples are moved into the partitions (and with a single
  /// shard the whole batch is forwarded without copying). Prefer this for
  /// batches the caller does not reuse.
  common::Status PushBatch(ExecGraph::NodeId source, TupleBatch&& batch);
  common::Status Push(ExecGraph::NodeId source, Tuple tuple);

  /// Shutdown, in backpressure-safe order: (1) close every ingest lane so
  /// a racing push fails loudly with FailedPrecondition instead of
  /// parking tuples in a buffer nobody will flush, then wait for pushes
  /// already in flight to leave (the workers are still consuming, so a
  /// blocked producer drains, never wedges), (2) flush the lane-local
  /// merge buffers into the still-open rings, (3) close the rings, join
  /// the workers (they drain everything accepted), flush every shard's
  /// graph, and merge the per-shard sink outputs. Idempotent; returns the
  /// first error any shard hit. A push acknowledged with OK is always
  /// delivered; a push racing Finish() gets a loud error, never a
  /// deadlock or a silent drop.
  common::Status Finish();

  /// Merged output of a sink node: shard-index concatenation, then a
  /// stable sort by timestamp — deterministic for any worker interleaving
  /// at a fixed shard count with single-lane ingest; across shard or lane
  /// counts the tuple SET and the timestamp order are identical but
  /// equal-timestamp ties may reorder. Empty until Finish().
  const TupleBatch& sink_output(ExecGraph::NodeId sink) const;
  TupleBatch TakeSinkOutput(ExecGraph::NodeId sink);

  /// Per-node metrics merged across shards, plus one appended entry per
  /// source node carrying the ingest counters (queue depth, producer
  /// block time); safe to call while running.
  std::vector<NodeMetrics> MetricsSnapshot() const;

  /// Shard-local archive inspection (tests, lineage debugging). Only
  /// valid after Finish().
  const TupleArchive& archive(size_t shard) const;
  /// Highest timestamp shard `shard` has processed. Only valid after
  /// Finish().
  int64_t watermark(size_t shard) const;

  size_t num_shards() const { return shards_.size(); }
  size_t num_lanes() const { return lanes_.size(); }
  /// Current re-batching target (fixed unless auto_target_batch_size).
  size_t current_target_batch_size() const {
    return current_target_.load(std::memory_order_relaxed);
  }

 private:
  struct Message {
    ExecGraph::NodeId source = ExecGraph::kInvalidNode;
    /// Per-(lane, source) slice counter; strictly increasing in the
    /// subsequence each shard receives. Workers verify it.
    uint64_t seq = 0;
    TupleBatch batch;
    /// When != INT64_MIN this is a watermark control message (batch
    /// empty): the worker forwards it into the shard's DagExecutor and
    /// advances the eviction clock instead of processing tuples.
    int64_t watermark = INT64_MIN;
  };

  /// Per-source ingest counters. Written by the owning lane's producer
  /// thread, read by MetricsSnapshot() from anywhere (hence atomics).
  struct IngestCounters {
    std::atomic<uint64_t> tuples{0};
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> blocked_ns{0};
    std::atomic<uint64_t> peak_depth{0};
  };

  struct Lane {
    /// One SPSC ring per shard; this lane's producer thread is the only
    /// pusher, the shard worker the only popper.
    std::vector<std::unique_ptr<SpscRing<Message>>> rings;
    /// Flipped first during Finish() so racing pushes fail loudly.
    /// seq_cst together with `active` (store/load vs. RMW/load on the
    /// other side) so Finish() and a racing push cannot both miss each
    /// other.
    std::atomic<bool> closed{false};
    /// Pushes currently inside PushBatch. Finish() waits for zero after
    /// closing the lane, so an acknowledged push is never stranded in a
    /// ring the workers already drained. Blocked producers cannot wedge
    /// the wait: the workers keep consuming until the rings close, which
    /// happens after.
    std::atomic<int> active{0};
    /// Under Options::pin_threads, the first pushing thread claims this
    /// flag and pins itself to the lane's core.
    std::atomic<bool> producer_pinned{false};
    // ---- producer-thread-local state (no locks; single producer) ----
    TupleBatch pending;
    ExecGraph::NodeId pending_source = ExecGraph::kInvalidNode;
    /// Next slice sequence number per source node id.
    std::vector<uint64_t> next_seq;
    /// Periodic watermark generation + monotone-commit state per source.
    std::vector<SourceWatermarkClock> watermark_clocks;
  };

  struct Shard {
    std::unique_ptr<DagExecutor> exec;
    TupleArchive archive;
    /// Reusable CF/order-statistics scratch; worker-thread-private.
    stats::CfInversionWorkspace cf_workspace;
    std::thread worker;
    size_t index = 0;
    /// Guards exec/archive/watermark/status against snapshot readers.
    mutable std::mutex mu;
    common::Status status;
    int64_t watermark = INT64_MIN;
    int64_t last_evict_watermark = INT64_MIN;
    /// Last sequence number seen per source node id (worker-private).
    std::vector<uint64_t> last_seq;
    /// Event-time clock per source node id (worker-private): max of the
    /// source's data timestamps and its propagated watermarks. Archive
    /// eviction uses the MIN across sources that have reached this shard:
    /// under multi-lane skew the fastest source's clock must not evict a
    /// lagging source's freshly-archived tuples. A stalled source used to
    /// stall eviction forever; its explicit/periodic watermarks now keep
    /// this clock — and therefore eviction — moving.
    std::vector<int64_t> source_watermark;
  };

  ShardedExecutor(const Options& options, KeyFn key_fn);

  void WorkerLoop(Shard* shard);
  void ProcessMessage(Shard* shard, Message&& msg);
  /// Partition one (already target-sized) slice and enqueue per shard.
  common::Status PushSlice(Lane* lane, ExecGraph::NodeId source,
                           TupleBatch&& batch);
  /// RAII in-flight marker (Lane::active); engaged by AdmitPush, released
  /// when the push leaves PushBatch/PushWatermark.
  struct PushTicket {
    std::atomic<int>* active = nullptr;
    PushTicket() = default;
    PushTicket(const PushTicket&) = delete;
    PushTicket& operator=(const PushTicket&) = delete;
    ~PushTicket() {
      if (active) active->fetch_sub(1, std::memory_order_release);
    }
  };

  /// Shared producer-admission protocol of PushBatch and PushWatermark:
  /// finished/lane/source validation, then the in-flight marker (seq_cst,
  /// paired with the seq_cst lane close in Finish — either Finish sees
  /// the increment and waits, or the push sees the closed flag and fails
  /// loudly), then the closed-lane check. On OK, `*lane_out` is set and
  /// `ticket` holds the in-flight marker for the caller's scope.
  common::Status AdmitPush(LaneId lane_id, ExecGraph::NodeId source,
                           Lane** lane_out, PushTicket* ticket);
  /// Source->lane binding (first push wins; a later push on a different
  /// lane would break per-source arrival order and fails loudly).
  common::Status BindSourceToLane(LaneId lane_id, ExecGraph::NodeId source);
  /// Blocking enqueue with block-time/peak-depth accounting.
  common::Status Enqueue(Lane* lane, size_t shard, Message&& msg);
  /// Broadcast a watermark message for `source` to every shard on this
  /// lane's rings (monotone per source; no-op when not an advance).
  common::Status BroadcastWatermark(Lane* lane, ExecGraph::NodeId source,
                                    int64_t watermark);
  /// Advance the shard's min-across-sources eviction clock and evict the
  /// archive when it moved far enough. Caller holds shard->mu.
  void MaybeEvictArchive(Shard* shard);
  /// Re-batching ingest path: merge + split toward `target` using the
  /// lane-local buffer. Flushes the pending buffer on source change.
  common::Status PushRebatched(Lane* lane, ExecGraph::NodeId source,
                               TupleBatch&& batch, size_t target);
  common::Status FlushLanePending(Lane* lane);
  /// Feedback step for auto_target_batch_size.
  void MaybeRetune(uint64_t total_ingested);

  Options options_;
  KeyFn key_fn_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Lane each source is bound to (first push wins); kUnboundLane = free.
  static constexpr uint32_t kUnboundLane = UINT32_MAX;
  std::unique_ptr<std::atomic<uint32_t>[]> source_lane_;
  std::unique_ptr<IngestCounters[]> ingest_by_source_;
  size_t num_nodes_ = 0;
  /// Re-batching target; mutated by the tuner when auto.
  std::atomic<size_t> current_target_{0};
  std::atomic<uint64_t> ingested_tuples_{0};
  std::atomic<uint64_t> next_tune_at_{kTuneIntervalTuples};
  /// Startup latch: each worker bumps this after (optionally) pinning
  /// itself and first-touch-allocating its ring slots; Create() waits for
  /// num_shards before returning, so no producer can push into an
  /// unallocated ring.
  std::atomic<size_t> rings_ready_{0};
  std::vector<TupleBatch> merged_sinks_;  // indexed by NodeId, post-Finish
  std::mutex finish_mu_;  // serialises Finish() calls
  /// True only once workers are joined and sinks merged; gates the
  /// archive()/watermark()/sink_output() accessors.
  std::atomic<bool> finished_{false};
  common::Status final_status_;
};

/// KeyFn helpers: shard by the hash of one attribute.
ShardedExecutor::KeyFn KeyByStringValue(size_t value_index);
ShardedExecutor::KeyFn KeyByIntValue(size_t value_index);

}  // namespace stream
}  // namespace usp

#endif  // USP_STREAM_SHARDED_EXECUTOR_H_
