// Key-sharded, multi-threaded DAG runtime.
//
// The executor owns N shards; each shard runs a private copy of the plan
// (its own ExecGraph + operator instances, its own TupleArchive) on a
// dedicated worker thread fed by a bounded MPSC queue. Ingest threads hash
// each tuple's shard key and enqueue per-shard sub-batches, so all tuples
// of one key are processed by one shard: keyed plans (group-by, keyed
// joins, lineage resolution against the shard archive) need no cross-shard
// coordination, and the result SET is independent of the shard count
// (merged output is timestamp-sorted; equal-timestamp tie order follows
// shard assignment and may differ between shard counts).
//
// Metrics: every shard's operator instances accumulate private
// OperatorMetrics; MetricsSnapshot() merges them under the shard locks, so
// there is no shared mutable metrics struct between threads.
//
// Archives: each shard exposes a TupleArchive to the plan builder; the
// worker advances a per-shard watermark (max timestamp seen) and evicts
// archived tuples older than `watermark - archive_retention_us` after each
// message, bounding archive memory without any global pause.

#ifndef USP_STREAM_SHARDED_EXECUTOR_H_
#define USP_STREAM_SHARDED_EXECUTOR_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "stats/characteristic_function.h"
#include "stream/bounded_queue.h"
#include "stream/exec_graph.h"
#include "stream/pipeline.h"

namespace usp {
namespace stream {

/// Everything a plan builder may bind shard-locally.
struct ShardContext {
  size_t shard_index = 0;
  size_t num_shards = 1;
  /// Shard-private archive for lineage resolution; evicted by watermark.
  TupleArchive* archive = nullptr;
  /// Shard-private scratch for CF inversion / order-statistics grids.
  /// Owned by the shard and touched only from its worker thread; plan
  /// builders hand it to CfInversionSum::set_workspace or the pane
  /// aggregates so the per-window hot loop is allocation-free.
  stats::CfInversionWorkspace* cf_workspace = nullptr;
};

class ShardedExecutor {
 public:
  struct Options {
    size_t num_shards = 1;
    /// Bounded queue depth, in batches, per shard (backpressure beyond).
    size_t queue_capacity = 64;
    /// Archived tuples older than watermark - retention are evicted after
    /// each processed message; negative = keep everything.
    int64_t archive_retention_us = -1;
    /// When > 0, ingest re-batches caller pushes toward this many tuples
    /// before partitioning: oversized batches are split into target-sized
    /// slices (bounding per-message queue occupancy and shard latency for
    /// bulk pushes), and undersized consecutive batches for the same
    /// source are merged in an ingest-side buffer until a target-sized
    /// slice fills (amortising per-batch queue/dispatch overhead for
    /// trickle feeds). The buffer is flushed when the source changes
    /// (preserving cross-source arrival order) and at Finish(), so merging
    /// trades bounded latency — at most one flush — for throughput. 0
    /// forwards caller-sized batches unchanged.
    size_t target_batch_size = 0;
  };

  /// Maps a tuple to a shard-key hash; the shard is `hash % num_shards`.
  /// Must be pure: same tuple -> same key on every call and thread.
  using KeyFn = std::function<uint64_t(const Tuple&)>;

  /// Builds one shard's plan. Runs once per shard at Create() time; must
  /// be deterministic so every shard gets the same node numbering.
  using PlanBuilder =
      std::function<common::Status(ExecGraph* graph, const ShardContext& ctx)>;

  /// Builds the per-shard graphs (validated) and starts the workers.
  static common::Result<std::unique_ptr<ShardedExecutor>> Create(
      const Options& options, KeyFn key_fn, const PlanBuilder& builder);

  ~ShardedExecutor();

  ShardedExecutor(const ShardedExecutor&) = delete;
  ShardedExecutor& operator=(const ShardedExecutor&) = delete;

  /// Partition a batch by shard key and enqueue the per-shard sub-batches.
  common::Status PushBatch(ExecGraph::NodeId source, const TupleBatch& batch);
  /// Move ingest: tuples are moved into the partitions (and with a single
  /// shard the whole batch is forwarded without copying). Prefer this for
  /// batches the caller does not reuse.
  common::Status PushBatch(ExecGraph::NodeId source, TupleBatch&& batch);
  common::Status Push(ExecGraph::NodeId source, Tuple tuple);

  /// Close the queues, join the workers, flush every shard's graph, and
  /// merge the per-shard sink outputs. Idempotent; returns the first error
  /// any shard hit. All producers must have quiesced before Finish() is
  /// called: a Push racing Finish may be rejected or silently dropped.
  common::Status Finish();

  /// Merged output of a sink node: shard-index concatenation, then a
  /// stable sort by timestamp — deterministic for any worker interleaving
  /// at a fixed shard count; across shard counts the tuple SET and the
  /// timestamp order are identical but equal-timestamp ties may reorder.
  /// Empty until Finish().
  const TupleBatch& sink_output(ExecGraph::NodeId sink) const;
  TupleBatch TakeSinkOutput(ExecGraph::NodeId sink);

  /// Per-node metrics merged across shards; safe to call while running.
  std::vector<NodeMetrics> MetricsSnapshot() const;

  /// Shard-local archive inspection (tests, lineage debugging). Only
  /// valid after Finish().
  const TupleArchive& archive(size_t shard) const;
  /// Highest timestamp shard `shard` has processed. Only valid after
  /// Finish().
  int64_t watermark(size_t shard) const;

  size_t num_shards() const { return shards_.size(); }

 private:
  struct Message {
    ExecGraph::NodeId source;
    TupleBatch batch;
  };

  struct Shard {
    explicit Shard(size_t queue_capacity) : queue(queue_capacity) {}

    std::unique_ptr<DagExecutor> exec;
    TupleArchive archive;
    /// Reusable CF/order-statistics scratch; worker-thread-private.
    stats::CfInversionWorkspace cf_workspace;
    BoundedQueue<Message> queue;
    std::thread worker;
    /// Guards exec/archive/watermark/status against snapshot readers.
    mutable std::mutex mu;
    common::Status status;
    int64_t watermark = INT64_MIN;
    int64_t last_evict_watermark = INT64_MIN;
  };

  ShardedExecutor(const Options& options, KeyFn key_fn);

  void WorkerLoop(Shard* shard);
  /// Partition one (already target-sized) batch and enqueue per shard.
  common::Status PushSlice(ExecGraph::NodeId source, TupleBatch&& batch);
  /// Re-batching ingest path for target_batch_size > 0: merge + split
  /// toward the target. Flushes the pending buffer on source change.
  common::Status PushRebatched(ExecGraph::NodeId source, TupleBatch&& batch);
  /// Enqueue whatever is buffered (requires ingest_mu_).
  common::Status FlushPendingLocked();

  Options options_;
  KeyFn key_fn_;
  /// Ingest-side merge buffer (target_batch_size > 0 only): undersized
  /// consecutive batches for pending_source_ accumulate here until a
  /// target-sized slice fills. Guarded by ingest_mu_ so concurrent
  /// producers cannot interleave half-merged slices.
  std::mutex ingest_mu_;
  TupleBatch pending_;
  ExecGraph::NodeId pending_source_ = ExecGraph::kInvalidNode;
  /// Set by Finish() before the final flush so a racing re-batched push
  /// fails loudly instead of buffering tuples nobody will flush.
  bool ingest_closed_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<TupleBatch> merged_sinks_;  // indexed by NodeId, post-Finish
  std::mutex finish_mu_;  // serialises Finish() calls
  /// True only once workers are joined and sinks merged; gates the
  /// archive()/watermark()/sink_output() accessors.
  std::atomic<bool> finished_{false};
  common::Status final_status_;
};

/// KeyFn helpers: shard by the hash of one attribute.
ShardedExecutor::KeyFn KeyByStringValue(size_t value_index);
ShardedExecutor::KeyFn KeyByIntValue(size_t value_index);

}  // namespace stream
}  // namespace usp

#endif  // USP_STREAM_SHARDED_EXECUTOR_H_
