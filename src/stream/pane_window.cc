#include "stream/pane_window.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

#include "stream/batch.h"

namespace usp {
namespace stream {

using common::CeilToMultiple;
using common::FloorToMultiple;

namespace {

/// Slot assignment under signature sharing: each column maps to the slot
/// of the first earlier column with the same non-empty partial_signature,
/// or a fresh slot. Returns slot_of (per column); fills `slot_rep` with
/// the representative column per slot.
std::vector<size_t> AssignPartialSlots(
    const std::vector<PaneAggregateSpec>& specs,
    std::vector<size_t>* slot_rep) {
  std::vector<size_t> slot_of(specs.size());
  slot_rep->clear();
  for (size_t a = 0; a < specs.size(); ++a) {
    size_t slot = slot_rep->size();
    if (!specs[a].partial_signature.empty()) {
      for (size_t s = 0; s < slot_rep->size(); ++s) {
        if (specs[(*slot_rep)[s]].partial_signature ==
            specs[a].partial_signature) {
          slot = s;
          break;
        }
      }
    }
    if (slot == slot_rep->size()) slot_rep->push_back(a);
    slot_of[a] = slot;
  }
  return slot_of;
}

}  // namespace

size_t CountDistinctPartialSlots(const std::vector<PaneAggregateSpec>& specs) {
  std::vector<size_t> slot_rep;
  AssignPartialSlots(specs, &slot_rep);
  return slot_rep.size();
}

PanedGroupByAggregateOperator::PanedGroupByAggregateOperator(
    std::string name, WindowSpec spec, KeyFn key_fn,
    std::vector<PaneAggregateSpec> aggregates, HavingFn having)
    : Operator(std::move(name)),
      spec_(spec),
      pane_us_(std::gcd(spec.size_us, spec.slide_us)),
      key_fn_(std::move(key_fn)),
      aggregates_(std::move(aggregates)),
      having_(std::move(having)),
      next_close_end_(std::numeric_limits<int64_t>::max()),
      last_emitted_start_(std::numeric_limits<int64_t>::min()) {
  assert(spec.size_us > 0 && spec.slide_us > 0 &&
         spec.slide_us <= spec.size_us);
  slot_of_ = AssignPartialSlots(aggregates_, &slot_rep_);
}

int64_t PanedGroupByAggregateOperator::EarliestOpenWindowStart() const {
  // Pane boundaries are multiples of gcd(size, slide), so window membership
  // is uniform across a pane: pane [p, p+g) belongs to window [s, s+size)
  // iff s <= p and p + g <= s + size. The earliest candidate derives from
  // the earliest retained pane, bounded below by the emission cursor (a
  // pane outlives windows it already served).
  const int64_t p0 = panes_.begin()->first;
  int64_t s = CeilToMultiple(p0 + pane_us_ - spec_.size_us, spec_.slide_us);
  if (last_emitted_start_ != std::numeric_limits<int64_t>::min()) {
    s = std::max(s, last_emitted_start_ + spec_.slide_us);
  }
  return s;
}

common::Status PanedGroupByAggregateOperator::AddToPane(
    Pane& pane, const Tuple& tuple, const std::string& key) {
  // Tuple-rate estimate of the pane-partial + lineage state this tuple
  // adds; mirrored into the buffered_bytes gauge so pane-buffer growth is
  // observable alongside the naive path's window buffers.
  const uint64_t approx = tuple.ApproxBytes();
  pane.approx_bytes += approx;
  buffered_bytes_ += approx;
  mutable_metrics().buffered_bytes = buffered_bytes_;
  auto [it, inserted] = pane.groups.try_emplace(key);
  GroupState& gs = it->second;
  if (inserted) {
    pane.order.push_back(&it->first);
    gs.partials.reserve(slot_rep_.size());
    for (const size_t rep : slot_rep_) {
      gs.partials.push_back(aggregates_[rep].make_partial());
    }
  }
  // One accumulation per SLOT: columns sharing a partial_signature (e.g.
  // SUM and AVG of one attribute) pay the per-tuple work once.
  for (size_t s = 0; s < slot_rep_.size(); ++s) {
    USP_RETURN_NOT_OK(aggregates_[slot_rep_[s]].add(gs.partials[s].get(),
                                                    tuple));
  }
  gs.lineage.insert(gs.lineage.end(), tuple.lineage().begin(),
                    tuple.lineage().end());
  return common::Status::OK();
}

common::Status PanedGroupByAggregateOperator::Add(const Tuple& tuple,
                                                  const std::string& key) {
  const int64_t pane_start = FloorToMultiple(tuple.timestamp(), pane_us_);
  const bool was_empty = panes_.empty();
  Pane& pane = panes_[pane_start];
  if (was_empty) {
    next_close_end_ = EarliestOpenWindowStart() + spec_.size_us;
  }
  return AddToPane(pane, tuple, key);
}

common::Status PanedGroupByAggregateOperator::EmitWindow(int64_t start,
                                                         Collector* out) {
  const int64_t end = start + spec_.size_us;
  // Collect the window's groups in first-seen arrival order: panes are
  // time-ordered and each pane records its own first-seen order, so the
  // first pane mentioning a key determines its position.
  std::vector<const std::string*> order;
  std::map<std::string, std::vector<GroupState*>> groups;
  const auto pane_end = panes_.lower_bound(end);
  for (auto it = panes_.lower_bound(start); it != pane_end; ++it) {
    for (const std::string* key : it->second.order) {
      auto [git, inserted] = groups.try_emplace(*key);
      if (inserted) order.push_back(&git->first);
      git->second.push_back(&it->second.groups.at(*key));
    }
  }
  std::vector<PanePartial*> partials;
  for (const std::string* key : order) {
    const std::vector<GroupState*>& states = groups[*key];
    Tuple result(end, {Value(*key)});
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      partials.clear();
      for (GroupState* gs : states) {
        partials.push_back(gs->partials[slot_of_[a]].get());
      }
      auto v = aggregates_[a].finalize(partials);
      if (!v.ok()) return v.status();
      result.AppendValue(v.MoveValueUnsafe());
    }
    std::vector<TupleId> lineage;
    for (const GroupState* gs : states) {
      lineage.insert(lineage.end(), gs->lineage.begin(), gs->lineage.end());
    }
    result.SetLineage(std::move(lineage));
    if (having_ && !having_(result)) continue;
    out->Emit(std::move(result));
  }
  if (grid_cache_probe_) {
    const auto [hits, misses] = grid_cache_probe_();
    mutable_metrics().grid_cache_hits = hits;
    mutable_metrics().grid_cache_misses = misses;
  }
  last_emitted_start_ = start;
  return common::Status::OK();
}

void PanedGroupByAggregateOperator::EvictPanesServedBy(int64_t start) {
  // Evict panes whose last containing window (the largest slide multiple
  // <= pane start) has now been emitted.
  while (!panes_.empty() &&
         FloorToMultiple(panes_.begin()->first, spec_.slide_us) <= start) {
    const uint64_t bytes = panes_.begin()->second.approx_bytes;
    buffered_bytes_ -= bytes < buffered_bytes_ ? bytes : buffered_bytes_;
    panes_.erase(panes_.begin());
  }
  mutable_metrics().buffered_bytes = buffered_bytes_;
}

common::Status PanedGroupByAggregateOperator::CloseWindowsBefore(
    int64_t ts, Collector* out) {
  while (!panes_.empty()) {
    const int64_t s = EarliestOpenWindowStart();
    if (s + spec_.size_us > ts) {
      next_close_end_ = s + spec_.size_us;
      return common::Status::OK();
    }
    USP_RETURN_NOT_OK(EmitWindow(s, out));
    EvictPanesServedBy(s);
  }
  next_close_end_ = std::numeric_limits<int64_t>::max();
  return common::Status::OK();
}

common::Status PanedGroupByAggregateOperator::OnWatermark(int64_t watermark,
                                                          Collector* out) {
  // Same closure rule as the arrival path: the watermark bounds every
  // future timestamp from below, so windows ending at or below it are
  // complete regardless of input-order anomalies the watermark-only mode
  // tolerates.
  if (watermark > applied_watermark_) applied_watermark_ = watermark;
  return CloseWindowsBefore(watermark, out);
}

common::Status PanedGroupByAggregateOperator::CheckNotBelowWatermark(
    int64_t ts) const {
  if (!watermark_only_closure_) return common::Status::OK();
  return CheckTupleNotBelowWatermark(name(), spec_, applied_watermark_, ts);
}

common::Status PanedGroupByAggregateOperator::Process(const Tuple& tuple,
                                                      Collector* out) {
  if (!watermark_only_closure_ && tuple.timestamp() >= next_close_end_) {
    USP_RETURN_NOT_OK(CloseWindowsBefore(tuple.timestamp(), out));
  }
  USP_RETURN_NOT_OK(CheckNotBelowWatermark(tuple.timestamp()));
  return Add(tuple, key_fn_(tuple));
}

common::Status PanedGroupByAggregateOperator::ProcessBatch(
    const TupleBatch& batch, Collector* out) {
  // Same per-tuple logic, but consecutive tuples falling into the same
  // pane reuse the pane map node (std::map nodes are stable; the cache is
  // only dropped when a closing scan may evict panes).
  Pane* pane = nullptr;
  int64_t pane_start = 0;
  for (const Tuple& tuple : batch) {
    const int64_t ts = tuple.timestamp();
    if (!watermark_only_closure_ && ts >= next_close_end_) {
      USP_RETURN_NOT_OK(CloseWindowsBefore(ts, out));
      pane = nullptr;
    }
    USP_RETURN_NOT_OK(CheckNotBelowWatermark(ts));
    const int64_t start = FloorToMultiple(ts, pane_us_);
    if (pane == nullptr || start != pane_start) {
      const bool was_empty = panes_.empty();
      pane = &panes_[start];
      pane_start = start;
      if (was_empty) {
        next_close_end_ = EarliestOpenWindowStart() + spec_.size_us;
      }
    }
    USP_RETURN_NOT_OK(AddToPane(*pane, tuple, key_fn_(tuple)));
  }
  return common::Status::OK();
}

common::Status PanedGroupByAggregateOperator::Finish(Collector* out) {
  // End-of-stream: flush every remaining window unconditionally (no
  // ts comparison, which would overflow near INT64_MAX).
  while (!panes_.empty()) {
    const int64_t s = EarliestOpenWindowStart();
    USP_RETURN_NOT_OK(EmitWindow(s, out));
    EvictPanesServedBy(s);
  }
  next_close_end_ = std::numeric_limits<int64_t>::max();
  return common::Status::OK();
}

}  // namespace stream
}  // namespace usp
