#include "query/planner.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "query/query.h"
#include "stream/group_by.h"
#include "stream/pane_window.h"
#include "uncertain/aggregates.h"
#include "uncertain/pane_aggregates.h"

namespace usp {
namespace query {

namespace {

using stream::ExecGraph;
using stream::ShardContext;
using stream::ShardedExecutor;
using stream::Tuple;
using stream::TupleBatch;
using stream::Value;

/// Canonical grouping string of a Value, shared by the operator key and
/// the derived ingest shard key so both always agree.
std::string KeyStringOf(const Value& v) {
  switch (v.kind()) {
    case stream::ValueKind::kString:
      return v.AsString();
    case stream::ValueKind::kInt:
      return std::to_string(v.AsInt());
    case stream::ValueKind::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
      return buf;
    }
    case stream::ValueKind::kNull:
      return "null";
    case stream::ValueKind::kDistribution:
      return v.ToString();
  }
  return "?";
}

stream::GroupByAggregateOperator::KeyFn OperatorKeyFn(
    const LogicalPlan::Node& node) {
  if (node.group_key_fn) return node.group_key_fn;
  if (node.group_key_attr.has_value()) {
    const size_t attr = *node.group_key_attr;
    return [attr](const Tuple& t) { return KeyStringOf(t.value(attr)); };
  }
  // Ungrouped aggregate: the whole window is one group.
  return [](const Tuple&) { return std::string("all"); };
}

struct ShardKeyDecision {
  ShardedExecutor::KeyFn fn;
  PlanSummary::ShardKeySource source = PlanSummary::ShardKeySource::kNone;
};

/// Physical partition key for sharded execution. The caller's override
/// wins; otherwise the key is derived from the (single) group-by so that
/// one group's tuples always land on one shard: hash the group key
/// directly when only filters precede the group-by, or replay the (pure)
/// upstream map functions at ingest when maps sit in between.
common::Result<ShardKeyDecision> DeriveShardKey(const LogicalPlan& plan) {
  if (plan.partition_key()) {
    ShardKeyDecision d;
    d.fn = plan.partition_key();
    d.source = PlanSummary::ShardKeySource::kExplicit;
    return d;
  }
  size_t num_sources = 0;
  bool has_join = false;
  std::vector<LogicalPlan::NodeId> agg_nodes;
  for (LogicalPlan::NodeId id = 0; id < plan.num_nodes(); ++id) {
    switch (plan.kind(id)) {
      case LogicalPlan::NodeKind::kSource:
        ++num_sources;
        break;
      case LogicalPlan::NodeKind::kJoin:
        has_join = true;
        break;
      case LogicalPlan::NodeKind::kAggregate:
        agg_nodes.push_back(id);
        break;
      default:
        break;
    }
  }
  if (has_join) {
    return common::Status::InvalidArgument(
        "cannot derive a shard key for a plan with join nodes: "
        "probabilistic matches have no exact key to co-partition both "
        "inputs on — supply PartitionBy() (asserting matching pairs "
        "co-locate) or compile with num_shards = 1");
  }
  if (agg_nodes.empty()) {
    return common::Status::InvalidArgument(
        "no group-by to derive a shard key from; stateless plans need an "
        "explicit PartitionBy() or num_shards = 1");
  }
  if (agg_nodes.size() > 1) {
    return common::Status::InvalidArgument(
        "plan has " + std::to_string(agg_nodes.size()) +
        " aggregate stages with possibly different keys; supply "
        "PartitionBy() or num_shards = 1 (cross-shard exchange is a "
        "ROADMAP item)");
  }
  if (num_sources > 1) {
    return common::Status::InvalidArgument(
        "plan has multiple sources with different tuple layouts; the "
        "derived group key cannot be applied to all of them — supply "
        "PartitionBy() or num_shards = 1");
  }
  const LogicalPlan::Node& agg = plan.node(agg_nodes[0]);
  std::function<std::string(const Tuple&)> logical_key;
  if (agg.group_key_attr.has_value()) {
    const size_t attr = *agg.group_key_attr;
    logical_key = [attr](const Tuple& t) {
      return KeyStringOf(t.value(attr));
    };
  } else if (agg.group_key_fn) {
    logical_key = agg.group_key_fn;
  } else {
    return common::Status::InvalidArgument(
        "ungrouped (global) aggregate cannot be hash-sharded: every tuple "
        "belongs to one group, so use num_shards = 1");
  }
  // Walk the path source -> group-by input, collecting the maps the key
  // would need replayed (source-to-aggregate order).
  std::vector<stream::MapOperator::MapFn> maps;
  LogicalPlan::NodeId cur = agg.inputs[0];
  while (plan.kind(cur) != LogicalPlan::NodeKind::kSource) {
    const LogicalPlan::Node& n = plan.node(cur);
    if (n.kind == LogicalPlan::NodeKind::kMap) {
      maps.push_back(n.map);
    } else if (n.kind != LogicalPlan::NodeKind::kFilter) {
      return common::Status::InvalidArgument(
          "cannot derive a shard key through '" + n.name +
          "'; supply PartitionBy() or num_shards = 1");
    }
    cur = n.inputs[0];
  }
  std::reverse(maps.begin(), maps.end());
  ShardKeyDecision d;
  if (maps.empty()) {
    d.fn = [logical_key](const Tuple& t) {
      return static_cast<uint64_t>(std::hash<std::string>{}(logical_key(t)));
    };
    d.source = PlanSummary::ShardKeySource::kGroupKey;
  } else {
    // Maps must be pure (same contract as the operator path); a map that
    // drops the tuple (NotFound) pins it to shard 0 — it will be dropped
    // again by the in-graph map, so the placement is irrelevant.
    d.fn = [maps, logical_key](const Tuple& t) {
      Tuple cur_tuple = t;
      for (const auto& m : maps) {
        auto r = m(cur_tuple);
        if (!r.ok()) return static_cast<uint64_t>(0);
        cur_tuple = r.MoveValueUnsafe();
      }
      return static_cast<uint64_t>(
          std::hash<std::string>{}(logical_key(cur_tuple)));
    };
    d.source = PlanSummary::ShardKeySource::kReplayedGroupKey;
  }
  return d;
}

/// Materialises one shard's ExecGraph from the logical plan. `record` is
/// true exactly once (shard 0 / the single DAG) so the name maps and the
/// summary are filled without duplicates.
common::Status BuildGraph(const LogicalPlan& plan,
                          const PlannerOptions& options,
                          const ShardContext& ctx, CompiledQuery* owner,
                          bool record, ExecGraph* graph,
                          PlanSummary* summary,
                          std::unordered_map<std::string, ExecGraph::NodeId>*
                              sources,
                          std::unordered_map<std::string, ExecGraph::NodeId>*
                              sinks,
                          std::function<uncertain::SumStrategy*(
                              uncertain::SumStrategyKind)> new_strategy) {
  std::vector<ExecGraph::NodeId> phys(plan.num_nodes(),
                                      ExecGraph::kInvalidNode);
  for (LogicalPlan::NodeId id = 0; id < plan.num_nodes(); ++id) {
    const LogicalPlan::Node& n = plan.node(id);
    switch (n.kind) {
      case LogicalPlan::NodeKind::kSource:
        phys[id] = graph->AddSource(n.name);
        if (record) (*sources)[n.name] = phys[id];
        break;
      case LogicalPlan::NodeKind::kFilter:
        phys[id] = graph->AddOperator(
            phys[n.inputs[0]],
            std::make_unique<stream::FilterOperator>(n.name, n.filter));
        break;
      case LogicalPlan::NodeKind::kMap:
        phys[id] = graph->AddOperator(
            phys[n.inputs[0]],
            std::make_unique<stream::MapOperator>(n.name, n.map));
        break;
      case LogicalPlan::NodeKind::kAggregate: {
        // The planner's headline decision: pane-incremental aggregation
        // exactly when windows overlap (slide < size), where each tuple
        // would otherwise be re-aggregated once per overlapping window;
        // tumbling windows use the exact per-window kernels (bitwise-
        // identical results, no pane bookkeeping).
        const bool paned =
            options.aggregate_path ==
                PlannerOptions::AggregatePath::kForcePaned ||
            (options.aggregate_path == PlannerOptions::AggregatePath::kAuto &&
             n.window->slide_us < n.window->size_us);
        auto key_fn = OperatorKeyFn(n);
        std::unique_ptr<stream::Operator> op;
        if (paned) {
          uncertain::PaneAggregateOptions popts;
          popts.grid_points = options.cf_grid_points;
          popts.workspace = ctx.cf_workspace;
          std::vector<stream::PaneAggregateSpec> specs;
          specs.reserve(n.aggregates.size());
          for (const AggregateDecl& a : n.aggregates) {
            switch (a.kind) {
              case AggregateKind::kSum:
                specs.push_back(uncertain::MakePaneSumAggregate(
                    a.output_name, a.attr_index, a.strategy, popts));
                break;
              case AggregateKind::kAvg:
                specs.push_back(uncertain::MakePaneAvgAggregate(
                    a.output_name, a.attr_index, a.strategy, popts));
                break;
              case AggregateKind::kMax:
                specs.push_back(uncertain::MakePaneMaxAggregate(
                    a.output_name, a.attr_index, a.bins, popts));
                break;
              case AggregateKind::kMin:
                specs.push_back(uncertain::MakePaneMinAggregate(
                    a.output_name, a.attr_index, a.bins, popts));
                break;
              case AggregateKind::kCount:
                specs.push_back(
                    uncertain::MakePaneCountAggregate(a.output_name));
                break;
            }
          }
          op = std::make_unique<stream::PanedGroupByAggregateOperator>(
              n.name, *n.window, std::move(key_fn), std::move(specs),
              n.having);
        } else {
          std::vector<stream::AggregateSpec> specs;
          specs.reserve(n.aggregates.size());
          for (const AggregateDecl& a : n.aggregates) {
            switch (a.kind) {
              case AggregateKind::kSum:
                specs.push_back(uncertain::MakeSumAggregate(
                    a.output_name, a.attr_index, new_strategy(a.strategy)));
                break;
              case AggregateKind::kAvg:
                specs.push_back(uncertain::MakeAvgAggregate(
                    a.output_name, a.attr_index, new_strategy(a.strategy)));
                break;
              case AggregateKind::kMax:
                specs.push_back(uncertain::MakeMaxAggregate(
                    a.output_name, a.attr_index, a.bins));
                break;
              case AggregateKind::kMin:
                specs.push_back(uncertain::MakeMinAggregate(
                    a.output_name, a.attr_index, a.bins));
                break;
              case AggregateKind::kCount:
                specs.push_back(
                    uncertain::MakeCountAggregate(a.output_name));
                break;
            }
          }
          op = std::make_unique<stream::GroupByAggregateOperator>(
              n.name, *n.window, std::move(key_fn), std::move(specs),
              n.having);
        }
        phys[id] = graph->AddOperator(phys[n.inputs[0]], std::move(op));
        if (record) summary->aggregates.push_back({n.name, paned});
        break;
      }
      case LogicalPlan::NodeKind::kJoin:
        phys[id] = graph->AddJoin(
            phys[n.inputs[0]], phys[n.inputs[1]],
            std::make_unique<stream::SlidingWindowJoin>(
                n.name, n.join_range_us, n.join_match));
        break;
      case LogicalPlan::NodeKind::kSink:
        phys[id] = graph->AddSink(phys[n.inputs[0]], n.name);
        if (record) (*sinks)[n.name] = phys[id];
        break;
    }
  }
  (void)owner;
  return common::Status::OK();
}

const TupleBatch& EmptyBatch() {
  static const TupleBatch* empty = new TupleBatch();
  return *empty;
}

}  // namespace

std::string PlanSummary::ToString() const {
  std::ostringstream out;
  out << num_shards << " shard" << (num_shards == 1 ? "" : "s") << " ("
      << (sharded ? "sharded executor" : "single-threaded DAG executor")
      << ")";
  switch (shard_key_source) {
    case ShardKeySource::kNone:
      break;
    case ShardKeySource::kExplicit:
      out << ", partition key: caller override";
      break;
    case ShardKeySource::kGroupKey:
      out << ", partition key: hashed group key";
      break;
    case ShardKeySource::kReplayedGroupKey:
      out << ", partition key: group key via replayed maps";
      break;
  }
  for (const AggregateChoice& a : aggregates) {
    out << "; aggregate '" << a.node_name << "': "
        << (a.paned ? "pane-incremental" : "exact per-window");
  }
  return out.str();
}

uncertain::SumStrategy* CompiledQuery::NewStrategy(
    uncertain::SumStrategyKind kind, size_t cf_grid_points,
    stats::CfInversionWorkspace* workspace) {
  std::unique_ptr<uncertain::SumStrategy> strategy;
  if (kind == uncertain::SumStrategyKind::kCfInversion) {
    auto cf = std::make_unique<uncertain::CfInversionSum>(cf_grid_points);
    cf->set_workspace(workspace);
    strategy = std::move(cf);
  } else {
    strategy = uncertain::MakeSumStrategy(kind);
  }
  strategies_.push_back(std::move(strategy));
  return strategies_.back().get();
}

stream::ExecGraph::NodeId CompiledQuery::source(
    const std::string& name) const {
  const auto it = sources_.find(name);
  return it == sources_.end() ? ExecGraph::kInvalidNode : it->second;
}

stream::ExecGraph::NodeId CompiledQuery::sink(const std::string& name) const {
  const auto it = sinks_.find(name);
  return it == sinks_.end() ? ExecGraph::kInvalidNode : it->second;
}

common::Status CompiledQuery::Push(stream::ExecGraph::NodeId source,
                                   stream::Tuple tuple) {
  TupleBatch batch;
  batch.Append(std::move(tuple));
  return PushBatch(source, std::move(batch));
}

common::Status CompiledQuery::PushBatch(stream::ExecGraph::NodeId source,
                                        const stream::TupleBatch& batch) {
  TupleBatch copy = batch;
  return PushBatch(source, std::move(copy));
}

common::Status CompiledQuery::PushBatch(stream::ExecGraph::NodeId source,
                                        stream::TupleBatch&& batch) {
  if (source == ExecGraph::kInvalidNode) {
    return common::Status::InvalidArgument("unknown source node");
  }
  if (finished_) {
    return common::Status::FailedPrecondition("query already finished");
  }
  if (dag_) return dag_->PushBatch(source, batch);
  return sharded_->PushBatch(source, std::move(batch));
}

common::Status CompiledQuery::Finish() {
  if (finished_) return finish_status_;
  finish_status_ = dag_ ? dag_->Close() : sharded_->Finish();
  finished_ = true;
  return finish_status_;
}

const stream::TupleBatch& CompiledQuery::Result(
    stream::ExecGraph::NodeId sink) const {
  if (sink == ExecGraph::kInvalidNode) return EmptyBatch();
  if (dag_) return dag_->sink_output(sink);
  // The sharded merge only exists after Finish().
  if (!finished_) return EmptyBatch();
  return sharded_->sink_output(sink);
}

const stream::TupleBatch& CompiledQuery::Result(
    const std::string& name) const {
  return Result(sink(name));
}

stream::TupleBatch CompiledQuery::TakeResult(stream::ExecGraph::NodeId sink) {
  if (sink == ExecGraph::kInvalidNode) return TupleBatch();
  if (dag_) return dag_->TakeSinkOutput(sink);
  if (!finished_) return TupleBatch();
  return sharded_->TakeSinkOutput(sink);
}

std::vector<stream::NodeMetrics> CompiledQuery::MetricsSnapshot() const {
  return dag_ ? dag_->MetricsSnapshot() : sharded_->MetricsSnapshot();
}

common::Result<std::unique_ptr<CompiledQuery>> Planner::Compile(
    const LogicalPlan& plan, const PlannerOptions& options) {
  USP_RETURN_NOT_OK(plan.Validate());
  if (options.num_shards == 0) {
    return common::Status::InvalidArgument("num_shards must be >= 1");
  }
  std::unique_ptr<CompiledQuery> compiled(new CompiledQuery());
  compiled->summary_.num_shards = options.num_shards;
  CompiledQuery* raw = compiled.get();

  if (options.num_shards == 1) {
    ShardContext ctx;
    ctx.shard_index = 0;
    ctx.num_shards = 1;
    ctx.archive = &compiled->local_archive_;
    ctx.cf_workspace = &compiled->local_workspace_;
    auto graph = std::make_unique<ExecGraph>();
    USP_RETURN_NOT_OK(BuildGraph(
        plan, options, ctx, raw, /*record=*/true, graph.get(),
        &compiled->summary_, &compiled->sources_, &compiled->sinks_,
        [raw, &options, &ctx](uncertain::SumStrategyKind kind) {
          return raw->NewStrategy(kind, options.cf_grid_points,
                                  ctx.cf_workspace);
        }));
    USP_RETURN_NOT_OK(graph->Validate());
    compiled->dag_ = std::make_unique<stream::DagExecutor>(std::move(graph));
    return compiled;
  }

  USP_ASSIGN_OR_RETURN(ShardKeyDecision key, DeriveShardKey(plan));
  compiled->summary_.sharded = true;
  compiled->summary_.shard_key_source = key.source;
  ShardedExecutor::Options sopts;
  sopts.num_shards = options.num_shards;
  sopts.queue_capacity = options.queue_capacity;
  sopts.archive_retention_us = options.archive_retention_us;
  sopts.target_batch_size = options.target_batch_size;
  auto exec_or = ShardedExecutor::Create(
      sopts, std::move(key.fn),
      [&plan, &options, raw](ExecGraph* g, const ShardContext& ctx) {
        return BuildGraph(
            plan, options, ctx, raw, /*record=*/ctx.shard_index == 0, g,
            &raw->summary_, &raw->sources_, &raw->sinks_,
            [raw, &options, &ctx](uncertain::SumStrategyKind kind) {
              return raw->NewStrategy(kind, options.cf_grid_points,
                                      ctx.cf_workspace);
            });
      });
  USP_RETURN_NOT_OK(exec_or.status());
  compiled->sharded_ = exec_or.MoveValueUnsafe();
  return compiled;
}

common::Result<std::unique_ptr<CompiledQuery>> Query::Compile() const {
  return Compile(PlannerOptions{});
}

common::Result<std::unique_ptr<CompiledQuery>> Query::Compile(
    const PlannerOptions& options) const {
  USP_ASSIGN_OR_RETURN(LogicalPlan plan, Build());
  return Planner::Compile(plan, options);
}

}  // namespace query
}  // namespace usp
