#include "query/planner.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <thread>
#include <utility>

#include "query/query.h"
#include "stream/group_by.h"
#include "stream/pane_window.h"
#include "stream/subscription_index.h"
#include "uncertain/aggregates.h"
#include "uncertain/pane_aggregates.h"
#include "uncertain/selection.h"

namespace usp {
namespace query {

namespace {

using stream::ExecGraph;
using stream::ShardContext;
using stream::ShardedExecutor;
using stream::Tuple;
using stream::TupleBatch;
using stream::Value;

using stream::CanonicalKeyString;

stream::GroupByAggregateOperator::KeyFn OperatorKeyFn(
    const LogicalPlan::Node& node) {
  if (node.group_key_fn) return node.group_key_fn;
  if (node.group_key_attr.has_value()) {
    const size_t attr = *node.group_key_attr;
    return [attr](const Tuple& t) { return CanonicalKeyString(t.value(attr)); };
  }
  // Ungrouped aggregate: the whole window is one group.
  return [](const Tuple&) { return std::string("all"); };
}

struct ShardKeyDecision {
  ShardedExecutor::KeyFn fn;
  PlanSummary::ShardKeySource source = PlanSummary::ShardKeySource::kNone;
};

/// Physical partition key for sharded execution. The caller's override
/// wins; otherwise the key is derived from the (single) group-by so that
/// one group's tuples always land on one shard: hash the group key
/// directly when only filters precede the group-by, or replay the (pure)
/// upstream map functions at ingest when maps sit in between.
common::Result<ShardKeyDecision> DeriveShardKey(const LogicalPlan& plan) {
  if (plan.partition_key()) {
    ShardKeyDecision d;
    d.fn = plan.partition_key();
    d.source = PlanSummary::ShardKeySource::kExplicit;
    return d;
  }
  size_t num_sources = 0;
  bool has_join = false;
  std::vector<LogicalPlan::NodeId> agg_nodes;
  for (LogicalPlan::NodeId id = 0; id < plan.num_nodes(); ++id) {
    switch (plan.kind(id)) {
      case LogicalPlan::NodeKind::kSource:
        ++num_sources;
        break;
      case LogicalPlan::NodeKind::kJoin:
        has_join = true;
        break;
      case LogicalPlan::NodeKind::kAggregate:
        agg_nodes.push_back(id);
        break;
      default:
        break;
    }
  }
  if (has_join) {
    return common::Status::InvalidArgument(
        "cannot derive a shard key for a plan with join nodes: "
        "probabilistic matches have no exact key to co-partition both "
        "inputs on — supply PartitionBy() (asserting matching pairs "
        "co-locate) or compile with num_shards = 1");
  }
  if (agg_nodes.empty()) {
    return common::Status::InvalidArgument(
        "no group-by to derive a shard key from; stateless plans need an "
        "explicit PartitionBy() or num_shards = 1");
  }
  if (agg_nodes.size() > 1) {
    return common::Status::InvalidArgument(
        "plan has " + std::to_string(agg_nodes.size()) +
        " aggregate stages with possibly different keys; supply "
        "PartitionBy() or num_shards = 1 (cross-shard exchange is a "
        "ROADMAP item)");
  }
  if (num_sources > 1) {
    return common::Status::InvalidArgument(
        "plan has multiple sources with different tuple layouts; the "
        "derived group key cannot be applied to all of them — supply "
        "PartitionBy() or num_shards = 1");
  }
  const LogicalPlan::Node& agg = plan.node(agg_nodes[0]);
  std::function<std::string(const Tuple&)> logical_key;
  if (agg.group_key_attr.has_value()) {
    const size_t attr = *agg.group_key_attr;
    logical_key = [attr](const Tuple& t) {
      return CanonicalKeyString(t.value(attr));
    };
  } else if (agg.group_key_fn) {
    logical_key = agg.group_key_fn;
  } else {
    return common::Status::InvalidArgument(
        "ungrouped (global) aggregate cannot be hash-sharded: every tuple "
        "belongs to one group, so use num_shards = 1");
  }
  // Walk the path source -> group-by input, collecting the maps the key
  // would need replayed (source-to-aggregate order).
  std::vector<stream::MapOperator::MapFn> maps;
  LogicalPlan::NodeId cur = agg.inputs[0];
  while (plan.kind(cur) != LogicalPlan::NodeKind::kSource) {
    const LogicalPlan::Node& n = plan.node(cur);
    if (n.kind == LogicalPlan::NodeKind::kMap) {
      maps.push_back(n.map);
    } else if (n.kind != LogicalPlan::NodeKind::kFilter) {
      return common::Status::InvalidArgument(
          "cannot derive a shard key through '" + n.name +
          "'; supply PartitionBy() or num_shards = 1");
    }
    cur = n.inputs[0];
  }
  std::reverse(maps.begin(), maps.end());
  ShardKeyDecision d;
  if (maps.empty()) {
    d.fn = [logical_key](const Tuple& t) {
      return static_cast<uint64_t>(std::hash<std::string>{}(logical_key(t)));
    };
    d.source = PlanSummary::ShardKeySource::kGroupKey;
  } else {
    // Maps must be pure (same contract as the operator path); a map that
    // drops the tuple (NotFound) pins it to shard 0 — it will be dropped
    // again by the in-graph map, so the placement is irrelevant.
    d.fn = [maps, logical_key](const Tuple& t) {
      Tuple cur_tuple = t;
      for (const auto& m : maps) {
        auto r = m(cur_tuple);
        if (!r.ok()) return static_cast<uint64_t>(0);
        cur_tuple = r.MoveValueUnsafe();
      }
      return static_cast<uint64_t>(
          std::hash<std::string>{}(logical_key(cur_tuple)));
    };
    d.source = PlanSummary::ShardKeySource::kReplayedGroupKey;
  }
  return d;
}

/// Materialises one shard's ExecGraph from the logical plan. `record` is
/// true exactly once (shard 0 / the single DAG) so the name maps and the
/// summary are filled without duplicates.
common::Status BuildGraph(const LogicalPlan& plan,
                          const PlannerOptions& options,
                          const ShardContext& ctx, CompiledQuery* owner,
                          bool record, ExecGraph* graph,
                          PlanSummary* summary,
                          std::unordered_map<std::string, ExecGraph::NodeId>*
                              sources,
                          std::unordered_map<std::string, ExecGraph::NodeId>*
                              sinks,
                          std::function<uncertain::SumStrategy*(
                              uncertain::SumStrategyKind)> new_strategy,
                          const std::vector<char>& watermark_only_aggs,
                          const Planner::DispatchFactory* make_dispatch) {
  std::vector<ExecGraph::NodeId> phys(plan.num_nodes(),
                                      ExecGraph::kInvalidNode);
  for (LogicalPlan::NodeId id = 0; id < plan.num_nodes(); ++id) {
    const LogicalPlan::Node& n = plan.node(id);
    switch (n.kind) {
      case LogicalPlan::NodeKind::kSource:
        phys[id] = graph->AddSource(n.name);
        if (record) (*sources)[n.name] = phys[id];
        break;
      case LogicalPlan::NodeKind::kFilter:
        phys[id] = graph->AddOperator(
            phys[n.inputs[0]],
            std::make_unique<stream::FilterOperator>(n.name, n.filter));
        break;
      case LogicalPlan::NodeKind::kMap:
        phys[id] = graph->AddOperator(
            phys[n.inputs[0]],
            std::make_unique<stream::MapOperator>(n.name, n.map));
        break;
      case LogicalPlan::NodeKind::kAggregate: {
        // The planner's headline decision: pane-incremental aggregation
        // exactly when windows overlap (slide < size), where each tuple
        // would otherwise be re-aggregated once per overlapping window;
        // tumbling windows use the exact per-window kernels (bitwise-
        // identical results, no pane bookkeeping).
        const bool paned =
            options.aggregate_path ==
                PlannerOptions::AggregatePath::kForcePaned ||
            (options.aggregate_path == PlannerOptions::AggregatePath::kAuto &&
             n.window->slide_us < n.window->size_us);
        const bool watermark_only =
            id < watermark_only_aggs.size() && watermark_only_aggs[id];
        // Cross-group CF grid sharing: when this aggregate runs CF
        // inversion, turn on the shard workspace's grid cache so G groups
        // over identically-parameterised models evaluate each CfGrid once
        // (bitwise-neutral — a hit returns exactly what the miss would
        // compute), and install a probe so the operator's metrics report
        // the hit rate.
        bool share_grids = false;
        if (options.share_cf_grids && ctx.cf_workspace != nullptr) {
          for (const AggregateDecl& a : n.aggregates) {
            if ((a.kind == AggregateKind::kSum ||
                 a.kind == AggregateKind::kAvg) &&
                a.strategy == uncertain::SumStrategyKind::kCfInversion) {
              share_grids = true;
              break;
            }
          }
        }
        stats::CfGridCache* cache = nullptr;
        if (share_grids) {
          cache = &ctx.cf_workspace->grid_cache;
          cache->enabled = true;
        }
        auto key_fn = OperatorKeyFn(n);
        std::unique_ptr<stream::Operator> op;
        // Accumulator footprint for the summary: output columns vs.
        // distinct partial slots (pane path shares slots across columns
        // with equal partial signatures, e.g. SUM + AVG of one attribute).
        size_t partial_slots = n.aggregates.size();
        if (paned) {
          uncertain::PaneAggregateOptions popts;
          popts.grid_points = options.cf_grid_points;
          popts.workspace = ctx.cf_workspace;
          std::vector<stream::PaneAggregateSpec> specs;
          specs.reserve(n.aggregates.size());
          for (const AggregateDecl& a : n.aggregates) {
            switch (a.kind) {
              case AggregateKind::kSum:
                specs.push_back(uncertain::MakePaneSumAggregate(
                    a.output_name, a.attr_index, a.strategy, popts));
                break;
              case AggregateKind::kAvg:
                specs.push_back(uncertain::MakePaneAvgAggregate(
                    a.output_name, a.attr_index, a.strategy, popts));
                break;
              case AggregateKind::kMax:
                specs.push_back(uncertain::MakePaneMaxAggregate(
                    a.output_name, a.attr_index, a.bins, popts));
                break;
              case AggregateKind::kMin:
                specs.push_back(uncertain::MakePaneMinAggregate(
                    a.output_name, a.attr_index, a.bins, popts));
                break;
              case AggregateKind::kCount:
                specs.push_back(
                    uncertain::MakePaneCountAggregate(a.output_name));
                break;
            }
          }
          partial_slots = stream::CountDistinctPartialSlots(specs);
          auto paned_op =
              std::make_unique<stream::PanedGroupByAggregateOperator>(
                  n.name, *n.window, std::move(key_fn), std::move(specs),
                  n.having);
          if (watermark_only) paned_op->set_watermark_only_closure(true);
          if (cache != nullptr) {
            paned_op->set_grid_cache_probe([cache] {
              return std::make_pair(cache->hits, cache->misses);
            });
          }
          op = std::move(paned_op);
        } else {
          std::vector<stream::AggregateSpec> specs;
          specs.reserve(n.aggregates.size());
          for (const AggregateDecl& a : n.aggregates) {
            switch (a.kind) {
              case AggregateKind::kSum:
                specs.push_back(uncertain::MakeSumAggregate(
                    a.output_name, a.attr_index, new_strategy(a.strategy)));
                break;
              case AggregateKind::kAvg:
                specs.push_back(uncertain::MakeAvgAggregate(
                    a.output_name, a.attr_index, new_strategy(a.strategy)));
                break;
              case AggregateKind::kMax:
                specs.push_back(uncertain::MakeMaxAggregate(
                    a.output_name, a.attr_index, a.bins));
                break;
              case AggregateKind::kMin:
                specs.push_back(uncertain::MakeMinAggregate(
                    a.output_name, a.attr_index, a.bins));
                break;
              case AggregateKind::kCount:
                specs.push_back(
                    uncertain::MakeCountAggregate(a.output_name));
                break;
            }
          }
          auto naive_op = std::make_unique<stream::GroupByAggregateOperator>(
              n.name, *n.window, std::move(key_fn), std::move(specs),
              n.having);
          if (watermark_only) naive_op->set_watermark_only_closure(true);
          if (cache != nullptr) {
            naive_op->set_grid_cache_probe([cache] {
              return std::make_pair(cache->hits, cache->misses);
            });
          }
          op = std::move(naive_op);
        }
        phys[id] = graph->AddOperator(phys[n.inputs[0]], std::move(op));
        if (make_dispatch != nullptr && *make_dispatch) {
          // Multiplexed plan: splice the predicate-index dispatch between
          // the shared aggregate and whatever consumes it, so every
          // result row is routed to its subscribers before the sink.
          USP_ASSIGN_OR_RETURN(std::unique_ptr<stream::Operator> dispatch_op,
                               (*make_dispatch)(ctx));
          phys[id] = graph->AddOperator(phys[id], std::move(dispatch_op));
        }
        if (record) {
          summary->aggregates.push_back({n.name, paned});
          if (share_grids) summary->cf_grid_sharing = true;
          if (watermark_only) summary->watermark_driven.push_back(n.name);
          if (make_dispatch != nullptr && *make_dispatch) {
            summary->multiplex_agg_columns = n.aggregates.size();
            summary->multiplex_partial_slots = partial_slots;
          }
        }
        break;
      }
      case LogicalPlan::NodeKind::kJoin:
        phys[id] = graph->AddJoin(
            phys[n.inputs[0]], phys[n.inputs[1]],
            std::make_unique<stream::SlidingWindowJoin>(
                n.name, n.join_range_us, n.join_match,
                options.join_max_skew_us));
        break;
      case LogicalPlan::NodeKind::kSink:
        phys[id] = graph->AddSink(phys[n.inputs[0]], n.name);
        if (record) (*sinks)[n.name] = phys[id];
        break;
    }
  }
  (void)owner;
  return common::Status::OK();
}

const TupleBatch& EmptyBatch() {
  static const TupleBatch* empty = new TupleBatch();
  return *empty;
}

}  // namespace

std::string PlanSummary::ToString() const {
  std::ostringstream out;
  out << num_shards << " shard" << (num_shards == 1 ? "" : "s")
      << (auto_num_shards ? " [auto]" : "") << " ("
      << (sharded ? "sharded executor" : "single-threaded DAG executor")
      << ")";
  if (!auto_shard_note.empty()) {
    out << " — " << auto_shard_note;
  }
  if (sharded) {
    out << ", " << num_ingest_lanes << " ingest lane"
        << (num_ingest_lanes == 1 ? "" : "s")
        << (auto_num_ingest_lanes ? " [auto]" : "");
    if (!auto_lane_note.empty()) {
      out << " (" << auto_lane_note << ")";
    }
    out << ", target batch ";
    if (auto_target_batch_size) {
      out << "auto (initial " << target_batch_size << ")";
    } else if (target_batch_size == 0) {
      out << "pass-through";
    } else {
      out << target_batch_size;
    }
  }
  if (watermark_period_us > 0) {
    out << ", watermarks every " << watermark_period_us << " us"
        << (auto_watermark_period ? " [auto]" : "");
    if (watermark_lateness_us > 0) {
      out << " (lateness " << watermark_lateness_us << " us)";
    }
  } else {
    out << ", watermarks off" << (auto_watermark_period ? " [auto]" : "");
  }
  for (const std::string& name : watermark_driven) {
    out << "; aggregate '" << name << "': watermark-only window closure";
  }
  switch (shard_key_source) {
    case ShardKeySource::kNone:
      break;
    case ShardKeySource::kExplicit:
      out << ", partition key: caller override";
      break;
    case ShardKeySource::kGroupKey:
      out << ", partition key: hashed group key";
      break;
    case ShardKeySource::kReplayedGroupKey:
      out << ", partition key: group key via replayed maps";
      break;
  }
  for (const AggregateChoice& a : aggregates) {
    out << "; aggregate '" << a.node_name << "': "
        << (a.paned ? "pane-incremental" : "exact per-window");
  }
  if (cf_grid_sharing) out << "; cross-group CF grid sharing";
  if (sharded) {
    out << "; thread pinning " << (pin_threads ? "on" : "off")
        << (auto_pin_threads ? " [auto]" : "");
  }
  for (const auto& [filter_name, map_name] : pushed_filters) {
    out << "; filter '" << filter_name << "' pushed below map '" << map_name
        << "'";
  }
  if (multiplexed) {
    out << "; multiplexed: " << subscriptions_at_compile
        << " subscription(s) on one shared plan, " << multiplex_agg_columns
        << " aggregate column(s) in " << multiplex_partial_slots
        << " partial slot(s), predicate-index dispatch";
  }
  return out.str();
}

uncertain::SumStrategy* CompiledQuery::NewStrategy(
    uncertain::SumStrategyKind kind, size_t cf_grid_points,
    stats::CfInversionWorkspace* workspace) {
  std::unique_ptr<uncertain::SumStrategy> strategy;
  if (kind == uncertain::SumStrategyKind::kCfInversion) {
    auto cf = std::make_unique<uncertain::CfInversionSum>(cf_grid_points);
    cf->set_workspace(workspace);
    strategy = std::move(cf);
  } else {
    strategy = uncertain::MakeSumStrategy(kind);
  }
  strategies_.push_back(std::move(strategy));
  return strategies_.back().get();
}

stream::ExecGraph::NodeId CompiledQuery::source(
    const std::string& name) const {
  const auto it = sources_.find(name);
  return it == sources_.end() ? ExecGraph::kInvalidNode : it->second;
}

stream::ExecGraph::NodeId CompiledQuery::sink(const std::string& name) const {
  const auto it = sinks_.find(name);
  return it == sinks_.end() ? ExecGraph::kInvalidNode : it->second;
}

common::Status CompiledQuery::Push(stream::ExecGraph::NodeId source,
                                   stream::Tuple tuple) {
  TupleBatch batch;
  batch.Append(std::move(tuple));
  return PushBatch(source, std::move(batch));
}

common::Status CompiledQuery::PushBatch(stream::ExecGraph::NodeId source,
                                        const stream::TupleBatch& batch) {
  TupleBatch copy = batch;
  return PushBatch(source, std::move(copy));
}

size_t CompiledQuery::ingest_lane(stream::ExecGraph::NodeId source) const {
  const auto it = lane_of_source_.find(source);
  return it == lane_of_source_.end() ? 0 : it->second;
}

size_t CompiledQuery::current_target_batch_size() const {
  return sharded_ ? sharded_->current_target_batch_size() : 0;
}

common::Status CompiledQuery::PushBatch(stream::ExecGraph::NodeId source,
                                        stream::TupleBatch&& batch) {
  if (source == ExecGraph::kInvalidNode) {
    return common::Status::InvalidArgument("unknown source node");
  }
  if (finished_) {
    return common::Status::FailedPrecondition("query already finished");
  }
  if (dag_) {
    // The O(batch) timestamp scan exists only for watermark generation.
    const int64_t batch_max_ts =
        watermark_period_us_ > 0 ? batch.MaxTimestamp() : INT64_MIN;
    USP_RETURN_NOT_OK(dag_->PushBatch(source, batch));
    // Periodic watermark generation for the single-DAG backend (the
    // sharded backend generates lane-locally; same shared clock);
    // emitted after the data it covers, mirroring the executor-side
    // ordering rule.
    stream::SourceWatermarkClock& clock = source_clocks_[source];
    if (const auto wm = clock.Advance(batch_max_ts, watermark_period_us_,
                                      watermark_lateness_us_)) {
      if (clock.TryCommit(*wm)) {
        USP_RETURN_NOT_OK(dag_->PushWatermark(source, *wm));
      }
    }
    return common::Status::OK();
  }
  return sharded_->PushBatch(ingest_lane(source), source, std::move(batch));
}

common::Status CompiledQuery::PushWatermark(stream::ExecGraph::NodeId source,
                                            int64_t watermark) {
  if (source == ExecGraph::kInvalidNode) {
    return common::Status::InvalidArgument("unknown source node");
  }
  if (finished_) {
    return common::Status::FailedPrecondition("query already finished");
  }
  if (dag_) {
    if (!source_clocks_[source].TryCommit(watermark)) {
      return common::Status::OK();  // regression/re-send: no-op
    }
    return dag_->PushWatermark(source, watermark);
  }
  return sharded_->PushWatermark(ingest_lane(source), source, watermark);
}

common::Status CompiledQuery::Finish() {
  if (finished_) return finish_status_;
  finish_status_ = dag_ ? dag_->Close() : sharded_->Finish();
  finished_ = true;
  return finish_status_;
}

const stream::TupleBatch& CompiledQuery::Result(
    stream::ExecGraph::NodeId sink) const {
  if (sink == ExecGraph::kInvalidNode) return EmptyBatch();
  if (dag_) return dag_->sink_output(sink);
  // The sharded merge only exists after Finish().
  if (!finished_) return EmptyBatch();
  return sharded_->sink_output(sink);
}

const stream::TupleBatch& CompiledQuery::Result(
    const std::string& name) const {
  return Result(sink(name));
}

stream::TupleBatch CompiledQuery::TakeResult(stream::ExecGraph::NodeId sink) {
  if (sink == ExecGraph::kInvalidNode) return TupleBatch();
  if (dag_) return dag_->TakeSinkOutput(sink);
  if (!finished_) return TupleBatch();
  return sharded_->TakeSinkOutput(sink);
}

std::vector<stream::NodeMetrics> CompiledQuery::MetricsSnapshot() const {
  return dag_ ? dag_->MetricsSnapshot() : sharded_->MetricsSnapshot();
}

common::Result<std::unique_ptr<CompiledQuery>> Planner::Compile(
    const LogicalPlan& logical, const PlannerOptions& options) {
  return CompileImpl(logical, options, /*make_dispatch=*/nullptr);
}

common::Result<std::unique_ptr<CompiledQuery>> Planner::CompileImpl(
    const LogicalPlan& logical, const PlannerOptions& options,
    const DispatchFactory* make_dispatch) {
  USP_RETURN_NOT_OK(logical.Validate());
  std::unique_ptr<CompiledQuery> compiled(new CompiledQuery());
  PlanSummary& summary = compiled->summary_;
  CompiledQuery* raw = compiled.get();

  // Logical rewrite first: push declared-read filters below
  // preserved-prefix maps so the (often expensive) map runs only on
  // surviving tuples. Everything downstream — key derivation included —
  // sees the rewritten plan.
  LogicalPlan plan = logical;
  if (options.filter_pushdown) {
    plan.PushFiltersBelowMaps(&summary.pushed_filters);
  }

  size_t num_sources = 0;
  for (LogicalPlan::NodeId id = 0; id < plan.num_nodes(); ++id) {
    if (plan.kind(id) == LogicalPlan::NodeKind::kSource) ++num_sources;
  }

  // --- resolve watermark generation ---------------------------------------
  // Auto: derive the period from the plan's event-time spans — a quarter
  // of the smallest window slide / join range keeps several watermarks
  // per window (timely closure, bounded join buffers) at negligible
  // signalling cost — and turn generation off for plans with no
  // event-time state (nothing would consume the signal).
  summary.auto_watermark_period =
      options.watermark_period_us == PlannerOptions::kAutoWatermarkPeriod;
  int64_t watermark_period_us = options.watermark_period_us;
  if (summary.auto_watermark_period) {
    int64_t min_span = INT64_MAX;
    for (LogicalPlan::NodeId id = 0; id < plan.num_nodes(); ++id) {
      const LogicalPlan::Node& n = plan.node(id);
      if (n.kind == LogicalPlan::NodeKind::kAggregate && n.window) {
        min_span = std::min(min_span, n.window->slide_us);
      } else if (n.kind == LogicalPlan::NodeKind::kJoin &&
                 n.join_range_us > 0) {
        min_span = std::min(min_span, n.join_range_us);
      }
    }
    watermark_period_us =
        min_span == INT64_MAX ? 0 : std::max<int64_t>(1, min_span / 4);
  }
  summary.watermark_period_us = watermark_period_us;
  summary.watermark_lateness_us = options.watermark_lateness_us;

  // --- resolve num_shards -------------------------------------------------
  // Auto: as many shards as the machine has cores (capped) when a
  // partition key exists; plans with no derivable key degrade to one
  // shard with the reason recorded, instead of failing a default compile.
  // Explicit values keep the strict behaviour: N > 1 without a key fails.
  summary.auto_num_shards = options.num_shards == PlannerOptions::kAutoShards;
  size_t num_shards = options.num_shards;
  ShardKeyDecision key;
  bool have_key = false;
  if (summary.auto_num_shards) {
    const size_t hw = options.hardware_concurrency_override > 0
                          ? options.hardware_concurrency_override
                          : std::max(1u, std::thread::hardware_concurrency());
    num_shards = std::min(hw, PlannerOptions::kMaxAutoShards);
    if (num_shards > 1) {
      auto key_or = DeriveShardKey(plan);
      if (key_or.ok()) {
        key = key_or.MoveValueUnsafe();
        have_key = true;
      } else {
        summary.auto_shard_note =
            "auto-sharding fell back to 1 shard: " +
            key_or.status().message();
        num_shards = 1;
      }
    }
  } else if (num_shards > 1) {
    USP_ASSIGN_OR_RETURN(key, DeriveShardKey(plan));
    have_key = true;
  }
  summary.num_shards = num_shards;

  // --- resolve ingest lanes ----------------------------------------------
  // Auto: one lane per source on sharded plans (each sensor feed pushes
  // from its own thread), one lane otherwise — a single-shard,
  // single-lane plan keeps the zero-thread DagExecutor backend and its
  // exact emission order.
  summary.auto_num_ingest_lanes =
      options.num_ingest_lanes == PlannerOptions::kAutoLanes;
  size_t num_lanes = summary.auto_num_ingest_lanes
                         ? (num_shards > 1 ? num_sources : 1)
                         : options.num_ingest_lanes;
  // Multi-lane ingest only guarantees PER-SOURCE timestamp order. A join
  // tolerates cross-source skew (its matched-pair set is skew-invariant),
  // but its emission order then regresses in timestamp. A windowed
  // aggregate downstream of the join absorbs that when watermarks flow:
  // join output never regresses below the join's propagated watermark
  // (output ts = max of an eligible pair; each side's future tuples are
  // >= its watermark), so switching the aggregate to watermark-only
  // window closure restores correct closure without cross-source order —
  // the relaxation that used to force such plans single-lane. With
  // watermarks disabled, the old refusal stands. A SECOND join consuming
  // join output stays refused either way: its per-side expiry clocks need
  // each input in timestamp order, which skewed join output never has.
  std::vector<char> watermark_only_aggs(plan.num_nodes(), 0);
  if (num_lanes > 1) {
    std::vector<char> join_upstream(plan.num_nodes(), 0);
    std::string blocked;  // "kind 'name'" of the first order-sensitive node
    std::string blocked_reason;
    for (LogicalPlan::NodeId id = 0; id < plan.num_nodes(); ++id) {
      const LogicalPlan::Node& n = plan.node(id);
      char up_in = 0;
      for (LogicalPlan::NodeId in : n.inputs) {
        if (join_upstream[in]) up_in = 1;
      }
      if (up_in && blocked.empty()) {
        if (n.kind == LogicalPlan::NodeKind::kAggregate) {
          if (watermark_period_us > 0) {
            watermark_only_aggs[id] = 1;  // relaxation: close by watermark
          } else {
            blocked = "windowed aggregate '" + n.name + "'";
            blocked_reason =
                " (enable watermarks — PlannerOptions::watermark_period_us"
                " — to lift this: watermark-gated closure tolerates the"
                " skewed join emission order)";
          }
        } else if (n.kind == LogicalPlan::NodeKind::kJoin) {
          blocked = "join '" + n.name + "'";
        }
      }
      join_upstream[id] =
          up_in || n.kind == LogicalPlan::NodeKind::kJoin ? 1 : 0;
    }
    if (!blocked.empty()) {
      std::fill(watermark_only_aggs.begin(), watermark_only_aggs.end(), 0);
      if (summary.auto_num_ingest_lanes) {
        num_lanes = 1;
        summary.auto_lane_note =
            "single-lane ingest: " + blocked +
            " sits downstream of a join and needs cross-source "
            "timestamp order";
      } else {
        return common::Status::InvalidArgument(
            "num_ingest_lanes > 1 is unsafe here: " + blocked +
            " sits downstream of a join, and multi-lane ingest only "
            "preserves per-source timestamp order — the skewed join "
            "output would corrupt it; use num_ingest_lanes = 1" +
            blocked_reason);
      }
    }
  }
  summary.num_ingest_lanes = num_lanes;

  const bool use_sharded = num_shards > 1 || num_lanes > 1;

  // --- resolve the re-batching target ------------------------------------
  summary.auto_target_batch_size =
      options.target_batch_size == PlannerOptions::kAutoBatchSize;
  size_t target_batch_size = 0;
  if (use_sharded) {
    target_batch_size = summary.auto_target_batch_size
                            ? ShardedExecutor::kDefaultInitialBatch
                            : options.target_batch_size;
  }
  summary.target_batch_size = target_batch_size;

  if (!use_sharded) {
    ShardContext ctx;
    ctx.shard_index = 0;
    ctx.num_shards = 1;
    ctx.archive = &compiled->local_archive_;
    ctx.cf_workspace = &compiled->local_workspace_;
    auto graph = std::make_unique<ExecGraph>();
    USP_RETURN_NOT_OK(BuildGraph(
        plan, options, ctx, raw, /*record=*/true, graph.get(),
        &compiled->summary_, &compiled->sources_, &compiled->sinks_,
        [raw, &options, &ctx](uncertain::SumStrategyKind kind) {
          return raw->NewStrategy(kind, options.cf_grid_points,
                                  ctx.cf_workspace);
        },
        watermark_only_aggs, make_dispatch));
    USP_RETURN_NOT_OK(graph->Validate());
    compiled->dag_ = std::make_unique<stream::DagExecutor>(std::move(graph));
    // The single-DAG backend has no ingest lanes; CompiledQuery::PushBatch
    // generates the periodic watermarks itself.
    compiled->watermark_period_us_ = watermark_period_us;
    compiled->watermark_lateness_us_ = options.watermark_lateness_us;
    return compiled;
  }

  compiled->summary_.sharded = true;
  compiled->summary_.shard_key_source = key.source;
  // --- resolve thread pinning --------------------------------------------
  // Auto: pin shard workers and ingest lanes to distinct cores when the
  // machine has enough of them that placement matters (>= 4 hardware
  // threads). On smaller machines pinning to the few shared cores only
  // fights the OS scheduler.
  const size_t hw_for_pinning =
      options.hardware_concurrency_override > 0
          ? options.hardware_concurrency_override
          : std::max(1u, std::thread::hardware_concurrency());
  compiled->summary_.auto_pin_threads =
      options.pin_threads == PlannerOptions::PinThreads::kAuto;
  const bool pin_threads =
      options.pin_threads == PlannerOptions::PinThreads::kOn ||
      (options.pin_threads == PlannerOptions::PinThreads::kAuto &&
       hw_for_pinning >= 4);
  compiled->summary_.pin_threads = pin_threads;
  ShardedExecutor::Options sopts;
  sopts.num_shards = num_shards;
  sopts.num_ingest_lanes = num_lanes;
  sopts.queue_capacity = options.queue_capacity;
  sopts.archive_retention_us = options.archive_retention_us;
  sopts.target_batch_size = target_batch_size;
  sopts.auto_target_batch_size = summary.auto_target_batch_size;
  sopts.watermark_period_us = watermark_period_us;
  sopts.watermark_lateness_us = options.watermark_lateness_us;
  sopts.pin_threads = pin_threads;
  if (!have_key) {
    // Single shard behind a multi-lane ingest: partitioning is a no-op,
    // but the executor still requires a key function.
    key.fn = [](const Tuple&) { return uint64_t{0}; };
  }
  auto exec_or = ShardedExecutor::Create(
      sopts, std::move(key.fn),
      [&plan, &options, raw, &watermark_only_aggs, make_dispatch](
          ExecGraph* g, const ShardContext& ctx) {
        return BuildGraph(
            plan, options, ctx, raw, /*record=*/ctx.shard_index == 0, g,
            &raw->summary_, &raw->sources_, &raw->sinks_,
            [raw, &options, &ctx](uncertain::SumStrategyKind kind) {
              return raw->NewStrategy(kind, options.cf_grid_points,
                                      ctx.cf_workspace);
            },
            watermark_only_aggs, make_dispatch);
      });
  USP_RETURN_NOT_OK(exec_or.status());
  compiled->sharded_ = exec_or.MoveValueUnsafe();
  // Route each source to its lane, round-robin in declaration order (the
  // identity mapping when lanes were auto-chosen as one per source).
  size_t source_index = 0;
  for (LogicalPlan::NodeId id = 0; id < plan.num_nodes(); ++id) {
    if (plan.kind(id) != LogicalPlan::NodeKind::kSource) continue;
    const auto it = compiled->sources_.find(plan.node(id).name);
    if (it != compiled->sources_.end()) {
      compiled->lane_of_source_[it->second] = source_index % num_lanes;
    }
    ++source_index;
  }
  return compiled;
}

common::Result<std::unique_ptr<MultiplexedQuery>> Planner::CompileMultiplexed(
    const LogicalPlan& templ, std::shared_ptr<SubscriptionSet> subscriptions,
    const PlannerOptions& options) {
  if (subscriptions == nullptr) {
    return common::Status::InvalidArgument(
        "CompileMultiplexed needs a SubscriptionSet (it may be empty; "
        "subscriptions can be added after compilation)");
  }
  if (subscriptions->bound()) {
    return common::Status::InvalidArgument(
        "SubscriptionSet is already bound to a compiled plan; use one set "
        "per CompileMultiplexed call");
  }
  USP_RETURN_NOT_OK(templ.Validate());

  // Template shape: the sharing argument needs exactly one grouped,
  // windowed aggregate feeding one sink from one source — every
  // subscription then reads the same shared pane/CF state and differs
  // only in dispatch constants. Richer templates (joins, fan-out) are
  // per-query plans; compile them with Compile().
  size_t num_sources = 0, num_sinks = 0, num_joins = 0;
  std::vector<LogicalPlan::NodeId> agg_nodes;
  for (LogicalPlan::NodeId id = 0; id < templ.num_nodes(); ++id) {
    switch (templ.kind(id)) {
      case LogicalPlan::NodeKind::kSource:
        ++num_sources;
        break;
      case LogicalPlan::NodeKind::kSink:
        ++num_sinks;
        break;
      case LogicalPlan::NodeKind::kJoin:
        ++num_joins;
        break;
      case LogicalPlan::NodeKind::kAggregate:
        agg_nodes.push_back(id);
        break;
      default:
        break;
    }
  }
  if (num_sources != 1 || num_sinks != 1 || num_joins != 0 ||
      agg_nodes.size() != 1) {
    return common::Status::InvalidArgument(
        "multiplexed template must be source -> [filters/maps] -> one "
        "windowed group-by aggregate -> one sink (got " +
        std::to_string(num_sources) + " source(s), " +
        std::to_string(agg_nodes.size()) + " aggregate(s), " +
        std::to_string(num_joins) + " join(s), " + std::to_string(num_sinks) +
        " sink(s))");
  }
  const LogicalPlan::Node& agg = templ.node(agg_nodes[0]);
  if (!agg.group_key_attr.has_value() && !agg.group_key_fn) {
    return common::Status::InvalidArgument(
        "multiplexed template aggregate '" + agg.name +
        "' has no group key; subscription scopes select group keys, so an "
        "ungrouped aggregate has nothing to dispatch on");
  }
  if (templ.partition_key()) {
    return common::Status::InvalidArgument(
        "multiplexed templates cannot use PartitionBy(): the subscription "
        "table must partition exactly like the data, so the planner owns "
        "placement (drop the override; the group key derives it)");
  }

  // The factory runs once per shard while that shard's graph is built
  // (sequentially, on the compiling thread). The first call learns the
  // final shard count from the ShardContext and materialises the table
  // with one partition per shard — the same modulo placement the derived
  // ingest key uses, so a shard's dispatch partition holds exactly the
  // exact-key subscriptions whose groups that shard aggregates.
  const std::string dispatch_name = agg.name + "_dispatch";
  DispatchFactory make_dispatch =
      [subscriptions, dispatch_name,
       prob = uncertain::MakeSubscriptionProbFn()](const ShardContext& ctx)
      -> common::Result<std::unique_ptr<stream::Operator>> {
    if (!subscriptions->bound()) {
      USP_RETURN_NOT_OK(subscriptions->Bind(ctx.num_shards));
    }
    return std::unique_ptr<stream::Operator>(
        std::make_unique<stream::SubscriptionDispatchOperator>(
            dispatch_name, subscriptions->table(), ctx.shard_index, prob));
  };

  USP_ASSIGN_OR_RETURN(std::unique_ptr<CompiledQuery> compiled,
                       CompileImpl(templ, options, &make_dispatch));
  compiled->summary_.multiplexed = true;
  compiled->summary_.subscriptions_at_compile = subscriptions->size();

  std::unique_ptr<MultiplexedQuery> mq(new MultiplexedQuery());
  mq->compiled_ = std::move(compiled);
  mq->subscriptions_ = std::move(subscriptions);
  return mq;
}

stream::ExecGraph::NodeId MultiplexedQuery::source(
    const std::string& name) const {
  return compiled_->source(name);
}

stream::ExecGraph::NodeId MultiplexedQuery::sink(
    const std::string& name) const {
  return compiled_->sink(name);
}

size_t MultiplexedQuery::ingest_lane(stream::ExecGraph::NodeId source) const {
  return compiled_->ingest_lane(source);
}

common::Status MultiplexedQuery::Push(stream::ExecGraph::NodeId source,
                                      stream::Tuple tuple) {
  return compiled_->Push(source, std::move(tuple));
}

common::Status MultiplexedQuery::PushBatch(stream::ExecGraph::NodeId source,
                                           const stream::TupleBatch& batch) {
  return compiled_->PushBatch(source, batch);
}

common::Status MultiplexedQuery::PushBatch(stream::ExecGraph::NodeId source,
                                           stream::TupleBatch&& batch) {
  return compiled_->PushBatch(source, std::move(batch));
}

common::Status MultiplexedQuery::PushWatermark(
    stream::ExecGraph::NodeId source, int64_t watermark) {
  return compiled_->PushWatermark(source, watermark);
}

common::Status MultiplexedQuery::Finish() { return compiled_->Finish(); }

const stream::TupleBatch& MultiplexedQuery::Result(
    stream::ExecGraph::NodeId sink) const {
  return compiled_->Result(sink);
}

const stream::TupleBatch& MultiplexedQuery::Result(
    const std::string& name) const {
  return compiled_->Result(name);
}

stream::TupleBatch MultiplexedQuery::TakeResult(
    stream::ExecGraph::NodeId sink) {
  return compiled_->TakeResult(sink);
}

std::vector<stream::NodeMetrics> MultiplexedQuery::MetricsSnapshot() const {
  return compiled_->MetricsSnapshot();
}

const PlanSummary& MultiplexedQuery::summary() const {
  return compiled_->summary();
}

size_t MultiplexedQuery::num_shards() const { return compiled_->num_shards(); }

common::Result<std::unique_ptr<CompiledQuery>> Query::Compile() const {
  return Compile(PlannerOptions{});
}

common::Result<std::unique_ptr<CompiledQuery>> Query::Compile(
    const PlannerOptions& options) const {
  USP_ASSIGN_OR_RETURN(LogicalPlan plan, Build());
  return Planner::Compile(plan, options);
}

common::Result<std::unique_ptr<MultiplexedQuery>> Query::CompileMultiplexed(
    std::shared_ptr<SubscriptionSet> subscriptions) const {
  return CompileMultiplexed(std::move(subscriptions), PlannerOptions{});
}

common::Result<std::unique_ptr<MultiplexedQuery>> Query::CompileMultiplexed(
    std::shared_ptr<SubscriptionSet> subscriptions,
    const PlannerOptions& options) const {
  USP_ASSIGN_OR_RETURN(LogicalPlan plan, Build());
  return Planner::CompileMultiplexed(plan, std::move(subscriptions), options);
}

}  // namespace query
}  // namespace usp
