// Tiny expression helper for constant-threshold comparison filters:
//
//   q.Filter("hot", Attr(1) > 30.0)
//
// builds the predicate AND derives its read set ({1}) automatically, so
// the planner's filter pushdown works without a hand-declared
// reads_attrs — the ROADMAP follow-on that standing-query templates rely
// on (a template filter should never silently lose pushdown because the
// caller forgot the annotation).
//
// Comparison semantics over a Value: certain numerics compare
// numerically; distribution-valued attributes compare by expected value
// (mean) — use uncertain::MakeProbabilisticFilter for confidence-aware
// selection; strings and nulls never satisfy a numeric comparison.

#ifndef USP_QUERY_EXPR_H_
#define USP_QUERY_EXPR_H_

#include <cstdint>
#include <string>

#include "stream/tuple.h"

namespace usp {
namespace query {

enum class CompareOp : uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };

const char* CompareOpName(CompareOp op);

/// A constant-threshold comparison over one attribute, with the read set
/// it implies. Convertible into Query::Filter via the dedicated overload.
struct ComparePredicate {
  size_t attr_index = 0;
  CompareOp op = CompareOp::kGt;
  double constant = 0.0;

  /// Evaluates the comparison on one tuple (see file comment for the
  /// per-kind semantics; out-of-range attributes are false).
  bool Eval(const stream::Tuple& t) const;

  /// "attr(1) > 30" — for summaries and error messages.
  std::string ToString() const;
};

/// Attribute reference; combine with a constant via <, <=, >, >=, ==, !=.
struct AttrRef {
  size_t index = 0;
};

inline AttrRef Attr(size_t index) { return AttrRef{index}; }

inline ComparePredicate operator<(AttrRef a, double c) {
  return ComparePredicate{a.index, CompareOp::kLt, c};
}
inline ComparePredicate operator<=(AttrRef a, double c) {
  return ComparePredicate{a.index, CompareOp::kLe, c};
}
inline ComparePredicate operator>(AttrRef a, double c) {
  return ComparePredicate{a.index, CompareOp::kGt, c};
}
inline ComparePredicate operator>=(AttrRef a, double c) {
  return ComparePredicate{a.index, CompareOp::kGe, c};
}
inline ComparePredicate operator==(AttrRef a, double c) {
  return ComparePredicate{a.index, CompareOp::kEq, c};
}
inline ComparePredicate operator!=(AttrRef a, double c) {
  return ComparePredicate{a.index, CompareOp::kNe, c};
}

}  // namespace query
}  // namespace usp

#endif  // USP_QUERY_EXPR_H_
