// Fluent builder for LogicalPlans — the declarative front door of the
// runtime. The paper's Q1 reads almost verbatim:
//
//   auto q1 = Query::From("rfid_stream", 3)
//                 .Map("annotate", AnnotateAreaAndWeight(), 5)
//                 .Window(stream::WindowSpec::Tumbling(5'000'000))
//                 .GroupBy(3)                       // R2.area
//                 .Sum("total_weight", 4,           // sum(R2.weight)
//                      uncertain::SumStrategyKind::kCfApprox)
//                 .Having(uncertain::MakeHavingProbGreater(1, 200.0, 0.5))
//                 .Sink("alerts");
//   auto exec = q1.Compile({.num_shards = 4});      // planner picks the rest
//
// Query values are lightweight cursors into a shared plan under
// construction: copying a Query and extending both copies creates fan-out
// (two branches reading one source), and Join() merges two builders into
// one fan-in plan. Window/GroupBy/Aggregate/Having accumulate one pending
// aggregate stage that is sealed into a LogicalPlan node by the next
// non-aggregate step (Sink, Filter, Map, Join, or Build).
//
// Builder misuse (GroupBy after Aggregate, extending past a Sink, Having
// without an aggregate, ...) cannot return a Status from a fluent chain,
// so errors latch into the builder and surface from Build()/Compile() —
// one failure report per plan, at the same place physical planning errors
// appear.

#ifndef USP_QUERY_QUERY_H_
#define USP_QUERY_QUERY_H_

#include <memory>
#include <string>
#include <utility>

#include "query/expr.h"
#include "query/logical_plan.h"

namespace usp {
namespace query {

struct PlannerOptions;
class CompiledQuery;
class MultiplexedQuery;
class SubscriptionSet;

class Query {
 public:
  /// Starts a plan at a named external source. `arity` (optional) declares
  /// how many attributes the source's tuples carry, enabling compile-time
  /// validation of attribute references downstream; 0 skips those checks.
  static Query From(std::string source_name, size_t arity = 0);

  /// Selection on a caller predicate (certain attributes or probability
  /// thresholds; see uncertain::PredicateProbability for the latter).
  Query Filter(std::string name, stream::FilterOperator::Predicate pred) const;
  /// Same, declaring the attribute indices the predicate reads. The
  /// declaration is what lets the planner push the filter below an
  /// upstream Map whose preserved prefix covers every read attribute, so
  /// the map runs only on surviving tuples.
  Query Filter(std::string name, stream::FilterOperator::Predicate pred,
               std::vector<size_t> reads_attrs) const;
  /// Comparison-helper form: `q.Filter("hot", Attr(1) > 30.0)`. The read
  /// set ({attr_index}) is derived from the predicate, so the planner's
  /// filter pushdown applies without a hand-declared reads_attrs.
  Query Filter(std::string name, const ComparePredicate& pred) const;

  /// Projection / derived attributes. `output_arity` (optional) declares
  /// the transformed tuple width for downstream validation; 0 = unknown.
  /// `preserved_prefix` (optional) declares that input attributes
  /// [0, preserved_prefix) pass through unchanged at the same indices —
  /// the usual annotate-by-appending shape — which enables the planner's
  /// filter pushdown for filters that read only those attributes.
  Query Map(std::string name, stream::MapOperator::MapFn fn,
            size_t output_arity = 0, size_t preserved_prefix = 0) const;

  /// Opens a pending aggregate stage over `spec` windows.
  Query Window(stream::WindowSpec spec) const;

  /// Groups the pending stage by the given attribute (declarative — lets
  /// the planner derive the shard partition key) or by a custom key
  /// function. Must precede Aggregate()/Sum()/...; omitting GroupBy
  /// aggregates the whole window as one group.
  Query GroupBy(size_t key_attr) const;
  Query GroupBy(stream::GroupByAggregateOperator::KeyFn key_fn) const;

  /// Appends an aggregate column to the pending stage. For kSum/kAvg the
  /// `strategy` picks the Table 2 algorithm; the planner owns the physical
  /// realisation (naive exact vs. pane-incremental).
  Query Aggregate(AggregateDecl decl) const;
  Query Sum(std::string output_name, size_t attr_index,
            uncertain::SumStrategyKind strategy =
                uncertain::SumStrategyKind::kClt) const;
  Query Avg(std::string output_name, size_t attr_index,
            uncertain::SumStrategyKind strategy =
                uncertain::SumStrategyKind::kClt) const;
  Query Max(std::string output_name, size_t attr_index,
            size_t bins = 256) const;
  Query Min(std::string output_name, size_t attr_index,
            size_t bins = 256) const;
  Query Count(std::string output_name) const;

  /// HAVING filter over the pending stage's output rows
  /// [group_key, agg_1..agg_m].
  Query Having(stream::GroupByAggregateOperator::HavingFn having) const;

  /// Fan-in: symmetric sliding-window join of this stream (left) with
  /// `right` within `range_us`. `right` may come from the same From()
  /// chain (self-fan-out) or a separate builder (its nodes are copied in;
  /// do not keep extending `right` afterwards — it will not affect the
  /// joined plan).
  Query Join(const Query& right, int64_t range_us,
             stream::SlidingWindowJoin::MatchFn match,
             std::string name) const;

  /// Terminal collection point. The returned cursor only accepts Build(),
  /// Compile(), and PartitionBy(); branch before Sink() for fan-out.
  Query Sink(std::string name) const;

  /// Physical override: ingest partition key for sharded execution. When
  /// absent the planner derives the key from the group-by keys (replaying
  /// upstream maps if needed). Plan-wide; allowed at any chain position.
  Query PartitionBy(stream::ShardedExecutor::KeyFn key_fn) const;

  /// Seals pending stages into a snapshot of the logical plan built so
  /// far, or reports the first latched builder error. Does not run the
  /// full shape validation — Compile()/Planner::Compile does.
  common::Result<LogicalPlan> Build() const;

  /// Build() + Planner::Compile: validates the plan and materialises the
  /// physical runtime. Defined in planner.cc.
  common::Result<std::unique_ptr<CompiledQuery>> Compile() const;
  common::Result<std::unique_ptr<CompiledQuery>> Compile(
      const PlannerOptions& options) const;

  /// Build() + Planner::CompileMultiplexed: this chain is the shared
  /// TEMPLATE (one source, one grouped windowed aggregate, one sink);
  /// every standing query in `subscriptions` runs against its single
  /// physical plan. Defined in planner.cc.
  common::Result<std::unique_ptr<MultiplexedQuery>> CompileMultiplexed(
      std::shared_ptr<SubscriptionSet> subscriptions) const;
  common::Result<std::unique_ptr<MultiplexedQuery>> CompileMultiplexed(
      std::shared_ptr<SubscriptionSet> subscriptions,
      const PlannerOptions& options) const;

 private:
  struct State;       // shared plan under construction
  struct PendingAgg;  // per-branch window/group-by/aggregate accumulator

  Query() = default;
  Query WithError(std::string msg) const;
  /// Seals a pending aggregate stage as a kAggregate node consuming
  /// `input` in `into` (the shared plan, or a snapshot during Build).
  static LogicalPlan::NodeId SealInto(const PendingAgg& pending,
                                      LogicalPlan::NodeId input,
                                      LogicalPlan* into);
  /// Seals this branch's pending stage and returns the sealed cursor.
  LogicalPlan::NodeId SealPending(LogicalPlan* into) const;
  bool has_pending() const;

  std::shared_ptr<State> state_;
  std::shared_ptr<PendingAgg> pending_;
  LogicalPlan::NodeId cursor_ = LogicalPlan::kInvalidNode;
  bool at_sink_ = false;
};

}  // namespace query
}  // namespace usp

#endif  // USP_QUERY_QUERY_H_
