// The logical half of the query layer: a declarative, inspectable plan of
// the paper's box-arrow queries (Q1 fire-code group-by, Q2 flammable join,
// the radar tornado plans) with NO physical choices in it. A LogicalPlan
// says *what* to compute — sources, filters, maps, windowed group-by
// aggregates, sliding-window joins, sinks — while the physical planner
// (planner.h) decides *how*: naive vs. pane-incremental aggregation, shard
// counts and partition keys, workspace wiring, DagExecutor vs.
// ShardedExecutor.
//
// Plans are built with the fluent query::Query builder (query.h) and are
// acyclic by construction: every node's inputs must already exist, so
// creation order is a topological order (same invariant as
// stream::ExecGraph). Validate() checks the declarative shapes the builder
// cannot enforce locally — aggregates need a window, joins need two
// distinct inputs, group/aggregate attribute references must fit the
// declared source arity.

#ifndef USP_QUERY_LOGICAL_PLAN_H_
#define USP_QUERY_LOGICAL_PLAN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "stream/basic_operators.h"
#include "stream/group_by.h"
#include "stream/join.h"
#include "stream/sharded_executor.h"
#include "stream/window.h"
#include "uncertain/sum_strategies.h"

namespace usp {
namespace query {

/// Aggregate functions the planner knows how to materialise on both the
/// naive (exact per-window) and pane-incremental physical paths.
enum class AggregateKind : uint8_t { kSum, kAvg, kMax, kMin, kCount };

const char* AggregateKindName(AggregateKind kind);

/// One declared output aggregate column of a windowed group-by.
struct AggregateDecl {
  AggregateKind kind = AggregateKind::kCount;
  std::string output_name;
  /// Input attribute aggregated over (ignored for kCount).
  size_t attr_index = 0;
  /// SUM/AVG algorithm from the paper's Table 2 (§5.1). The planner turns
  /// this into a per-shard SumStrategy instance (naive path) or the
  /// matching pane partial (incremental path).
  uncertain::SumStrategyKind strategy = uncertain::SumStrategyKind::kClt;
  /// Output histogram resolution for kMax/kMin order statistics.
  size_t bins = 256;
};

/// \brief A typed, inspectable logical query plan.
///
/// Nodes reference their inputs by id; ids are dense and creation-ordered
/// (topological). The plan owns the user-supplied closures (predicates,
/// map functions, join matchers, custom group keys) but no operator
/// instances — those are materialised per shard by the Planner.
class LogicalPlan {
 public:
  using NodeId = uint32_t;
  static constexpr NodeId kInvalidNode = UINT32_MAX;

  enum class NodeKind : uint8_t {
    kSource,
    kFilter,
    kMap,
    kAggregate,  ///< windowed group-by + aggregates (+ optional HAVING)
    kJoin,
    kSink,
  };

  struct Node {
    NodeKind kind = NodeKind::kSource;
    std::string name;
    std::vector<NodeId> inputs;

    // kSource: number of attributes its tuples carry; 0 = undeclared
    // (arity-dependent validation is skipped downstream of it).
    size_t declared_arity = 0;

    // kFilter. `filter_reads` (optional) declares which attribute indices
    // the predicate reads; with it the planner may push the filter below
    // an upstream map whose preserved prefix covers every read attribute.
    // Unset = opaque predicate, never reordered.
    stream::FilterOperator::Predicate filter;
    std::optional<std::vector<size_t>> filter_reads;

    // kMap: the transform plus the (optional) arity of its output tuples;
    // 0 = undeclared. `map_preserved_prefix` declares that input
    // attributes [0, prefix) pass through unchanged at the same indices
    // (the common annotate-by-appending shape); 0 = no such guarantee.
    stream::MapOperator::MapFn map;
    size_t map_output_arity = 0;
    size_t map_preserved_prefix = 0;

    // kAggregate. Exactly one of group_key_attr / group_key_fn may be set;
    // neither means a single global group.
    std::optional<stream::WindowSpec> window;
    std::optional<size_t> group_key_attr;
    stream::GroupByAggregateOperator::KeyFn group_key_fn;
    std::vector<AggregateDecl> aggregates;
    stream::GroupByAggregateOperator::HavingFn having;

    // kJoin: symmetric sliding-window join, inputs = {left, right}.
    int64_t join_range_us = 0;
    stream::SlidingWindowJoin::MatchFn join_match;
  };

  /// Appends a node. Inputs must reference existing nodes; violations are
  /// reported by Validate(), not here, so the fluent builder can stay
  /// error-latching instead of throwing.
  NodeId AddNode(Node node);

  size_t num_nodes() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_[id]; }
  /// Builder-side annotation hook (e.g. attaching a filter's read set to
  /// the node just appended); nullptr when `id` is out of range.
  Node* mutable_node(NodeId id) {
    return id < nodes_.size() ? &nodes_[id] : nullptr;
  }
  NodeKind kind(NodeId id) const { return nodes_[id].kind; }
  const std::string& name(NodeId id) const { return nodes_[id].name; }
  const std::vector<NodeId>& inputs(NodeId id) const {
    return nodes_[id].inputs;
  }

  /// Optional caller-supplied ingest partition key (a *physical* hint the
  /// builder forwards for power users; when absent the planner derives the
  /// key from the group-by keys).
  void SetPartitionKey(stream::ShardedExecutor::KeyFn fn) {
    partition_key_ = std::move(fn);
  }
  const stream::ShardedExecutor::KeyFn& partition_key() const {
    return partition_key_;
  }

  /// Tuple arity flowing out of each node, where derivable: sources/maps
  /// use their declared arity, filters preserve their input, aggregates
  /// emit [key, agg_1..agg_m], joins and undeclared maps are unknown
  /// (nullopt).
  std::vector<std::optional<size_t>> OutputArities() const;

  /// Planner rewrite: swap each filter below its upstream map when the
  /// filter declares the attributes it reads (`filter_reads`), the map
  /// declares a preserved prefix covering all of them, and the filter is
  /// the map's only consumer — then the (possibly expensive) map runs
  /// only on tuples that survive the filter. Semantics-preserving for
  /// pure maps: the predicate reads only attributes the map passes
  /// through unchanged. Iterates to a fixpoint, so one filter can sink
  /// below a whole map chain. Appends (filter_name, map_name) per swap to
  /// `moved` (if non-null) and returns the number of swaps.
  size_t PushFiltersBelowMaps(
      std::vector<std::pair<std::string, std::string>>* moved = nullptr);

  /// Shape validation: at least one source and sink, edges respect
  /// creation order, joins have two distinct non-sink inputs, every
  /// non-source node is reachable from a source and every non-sink node
  /// feeds something, aggregates have a window and at least one aggregate
  /// column, attribute references fit known arities, and source/sink names
  /// are unique.
  common::Status Validate() const;

  /// One line per node, for tests, logs, and example output.
  std::string ToString() const;

 private:
  std::vector<Node> nodes_;
  stream::ShardedExecutor::KeyFn partition_key_;
};

}  // namespace query
}  // namespace usp

#endif  // USP_QUERY_LOGICAL_PLAN_H_
