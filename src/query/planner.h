// The physical half of the query layer: Planner::Compile turns a validated
// LogicalPlan into the existing physical runtime and makes every physical
// choice the repo's examples used to hand-wire —
//
//   * aggregation path: PanedGroupByAggregateOperator (pane-incremental)
//     whenever the window overlaps (slide < size); the exact per-window
//     GroupByAggregateOperator for tumbling windows, where naive and paned
//     results are bitwise-identical anyway and naive avoids pane overhead;
//   * SUM/AVG strategies: one SumStrategy instance per shard (aggregate
//     state never crosses threads), with CF-inversion strategies wired to
//     the shard's CfInversionWorkspace (ShardContext::cf_workspace) so the
//     per-window FFT hot loop is allocation-free;
//   * execution backend: a single-threaded DagExecutor at num_shards == 1,
//     a ShardedExecutor otherwise;
//   * ingest partition key (sharded only): the caller's PartitionBy()
//     override if present, else derived from the group-by key — hashed
//     directly when only filters sit between the source and the group-by,
//     or by replaying the intermediate (pure) map functions on the ingest
//     thread when maps do. Underivable cases (joins with no override,
//     ungrouped aggregates, multiple group-bys) fail Compile() with an
//     actionable Status instead of silently mis-partitioning — unless the
//     shard count itself was auto, in which case the planner falls back
//     to one shard and says why in the summary;
//   * physical auto-tuning (each overridable in PlannerOptions): shard
//     count from std::thread::hardware_concurrency(), one ingest lane per
//     source on sharded plans so multi-sensor feeds push from their own
//     threads, the ingest re-batching target from observed per-tuple
//     operator cost (the executor's feedback tuner), and filters pushed
//     below maps whenever the filter's declared read set lies inside the
//     map's preserved prefix.
//
// The result is a CompiledQuery: one ingest/finish/result facade over both
// backends, plus a PlanSummary describing the decisions for logs, tests,
// and examples.

#ifndef USP_QUERY_PLANNER_H_
#define USP_QUERY_PLANNER_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "query/logical_plan.h"
#include "query/subscription.h"
#include "stats/characteristic_function.h"
#include "stream/exec_graph.h"
#include "stream/pipeline.h"
#include "stream/sharded_executor.h"
#include "stream/watermark.h"
#include "uncertain/sum_strategies.h"

namespace usp {
namespace query {

struct PlannerOptions {
  /// Auto markers: the planner picks the value from the machine and the
  /// plan, reports it in PlanSummary, and any explicit value still wins.
  static constexpr size_t kAutoShards = 0;
  static constexpr size_t kAutoLanes = 0;
  static constexpr size_t kAutoBatchSize = static_cast<size_t>(-1);

  /// Worker shards. kAutoShards (the default) derives the count from
  /// std::thread::hardware_concurrency() (capped at kMaxAutoShards) when
  /// the plan's partition key is derivable, falling back to 1 — with the
  /// reason recorded in PlanSummary — when it is not (joins, ungrouped
  /// aggregates). An explicit 1 compiles to a single-threaded
  /// DagExecutor; an explicit N > 1 fails Compile() if no key can be
  /// derived or supplied.
  size_t num_shards = kAutoShards;
  /// Parallel ingest lanes (single producer thread each). kAutoLanes
  /// gives every source its own lane when the plan is sharded — radar A,
  /// radar B, and the RFID feed each push from their own thread — and 1
  /// lane otherwise. Sources are assigned round-robin in declaration
  /// order when there are fewer lanes than sources.
  size_t num_ingest_lanes = kAutoLanes;
  /// Per-(lane, shard) ingest ring depth, in batches (backpressure
  /// beyond).
  size_t queue_capacity = 64;
  /// Archive retention for lineage resolution; negative keeps everything.
  int64_t archive_retention_us = -1;
  /// Sharded ingest merges undersized and splits oversized caller batches
  /// toward this many tuples; 0 forwards caller-sized batches unchanged.
  /// kAutoBatchSize (the default) turns on the executor's feedback tuner:
  /// the target is re-derived from observed per-tuple operator cost so
  /// one batch carries roughly a fixed cost budget of downstream work.
  size_t target_batch_size = kAutoBatchSize;
  /// Push filters below maps when the filter declares a read set fully
  /// inside the map's preserved prefix (see Query::Filter/Map). On by
  /// default; semantics-preserving for pure maps.
  bool filter_pushdown = true;

  /// Physical aggregation path selection. kAuto implements the planner
  /// rule (paned iff the window overlaps); the force knobs exist for
  /// benchmarks and equivalence tests, not applications.
  enum class AggregatePath { kAuto, kForceNaive, kForcePaned };
  AggregatePath aggregate_path = AggregatePath::kAuto;

  /// Grid resolution for CF-inversion SUM/AVG (FFT points / output bins).
  size_t cf_grid_points = 1024;

  /// Share evaluated CF grids across a window's groups: the per-shard
  /// workspace keys CfGrid evaluations by distribution-parameter signature
  /// (stats::CfGridCache), so G groups over identically-parameterised
  /// sensor models pay for each grid once. Enabled (when true) only on
  /// plans with a CF-inversion SUM/AVG; bitwise-neutral — a cache hit
  /// returns the exact grid a miss would have computed.
  bool share_cf_grids = true;

  /// Pin shard workers and ingest lanes to distinct cores
  /// (ShardedExecutor::Options::pin_threads). kAuto pins when the machine
  /// reports >= 4 hardware threads and the plan is sharded; kOff/kOn
  /// force. Pinning also makes the deferred ring allocation first-touch
  /// core-local (each shard's rings are faulted in by its pinned worker).
  enum class PinThreads { kAuto, kOn, kOff };
  PinThreads pin_threads = PinThreads::kAuto;

  /// Memory bound for join buffers when one input stalls: a join side
  /// also expires once its own stream has advanced range + this many us
  /// past a tuple (asserting the two inputs' clocks never diverge
  /// further; matches beyond the divergence are dropped). Negative
  /// (default) keeps exact unbounded-skew semantics. Superseded by
  /// watermarks for the silent-input case — a watermark states the idle
  /// side's clock instead of assuming it, so no matches are dropped —
  /// but still honoured as a hard cap for feeds that send neither data
  /// nor watermarks.
  int64_t join_max_skew_us = -1;

  /// Event-time watermark generation period, in event-time microseconds.
  /// Watermarks are the runtime's progress signal: each source
  /// periodically announces "no future tuple below T", executors forward
  /// the signal along graph edges (fan-in nodes take the min of their
  /// inputs), windowed operators close windows by it, and join buffers
  /// expire by it — which is what keeps a join bounded when one input
  /// goes silent (CompiledQuery::PushWatermark covers the fully idle
  /// case). kAutoWatermarkPeriod (default) derives the period from the
  /// plan — a quarter of the smallest window slide / join range — when
  /// the plan has event-time state, and disables generation otherwise.
  /// 0 disables generation explicitly (pre-watermark behaviour:
  /// arrival-driven closure only). With lateness 0 (below), watermark
  /// closure fires exactly where arrival-driven closure already fired,
  /// so result sets are unchanged.
  static constexpr int64_t kAutoWatermarkPeriod = -1;
  int64_t watermark_period_us = kAutoWatermarkPeriod;
  /// Slack subtracted from a source's max ingested timestamp when its
  /// watermark is generated ("no future tuple below max - L"). This
  /// weakens only the PROMISE — it delays watermark-gated actions
  /// (watermark-only window closure below joins, join-buffer expiry) by
  /// L of event time. It does NOT make the arrival-driven closure path
  /// tolerate out-of-order input: windowed operators fed directly by a
  /// source still require per-source timestamp order regardless of this
  /// knob. Per-source order makes 0 exact; leave it there.
  int64_t watermark_lateness_us = 0;

  /// Auto shard counts are capped here: past ~8 shards ingest
  /// partitioning saturates before the workers do.
  static constexpr size_t kMaxAutoShards = 8;
  /// Test hook: pretend the machine has this many cores (0 = ask the OS).
  size_t hardware_concurrency_override = 0;
};

/// What the planner decided, for inspection. Every auto-tuned value is
/// reported here alongside whether it was chosen or explicitly supplied.
struct PlanSummary {
  size_t num_shards = 1;
  bool auto_num_shards = false;
  bool sharded = false;
  /// Why an auto shard choice fell back to 1 (e.g. underivable key);
  /// empty when it did not.
  std::string auto_shard_note;

  size_t num_ingest_lanes = 1;
  bool auto_num_ingest_lanes = false;
  /// Why an auto lane choice was reduced (e.g. a windowed aggregate
  /// downstream of a join needs cross-source order); empty otherwise.
  std::string auto_lane_note;

  /// Resolved ingest re-batching target (0 = pass-through / single DAG).
  size_t target_batch_size = 0;
  /// True when the executor's feedback tuner owns the target; the
  /// reported value is then the initial seed, see
  /// CompiledQuery::current_target_batch_size() for the live value.
  bool auto_target_batch_size = false;

  enum class ShardKeySource {
    kNone,              ///< single shard, no partitioning
    kExplicit,          ///< caller's PartitionBy() override
    kGroupKey,          ///< hash of the group key, evaluated at ingest
    kReplayedGroupKey,  ///< group key after replaying upstream maps
  };
  ShardKeySource shard_key_source = ShardKeySource::kNone;

  /// Resolved watermark generation period (0 = off) and whether the
  /// planner derived it from the plan's window/join spans.
  int64_t watermark_period_us = 0;
  bool auto_watermark_period = false;
  int64_t watermark_lateness_us = 0;
  /// Windowed aggregates switched to watermark-only closure: they consume
  /// join output under multi-lane ingest, where emission order regresses
  /// in timestamp under cross-source skew but never below the join's
  /// propagated watermark — so the watermark, not data arrival, closes
  /// their windows. This is what lifts the old multi-lane refusal for
  /// join-consuming windowed plans.
  std::vector<std::string> watermark_driven;

  struct AggregateChoice {
    std::string node_name;
    bool paned = false;  ///< pane-incremental vs. exact per-window
  };
  std::vector<AggregateChoice> aggregates;

  /// Cross-group CF grid sharing is live (PlannerOptions::share_cf_grids
  /// on a plan with a CF-inversion SUM/AVG). Hit/miss counts surface in
  /// the aggregate node's OperatorMetrics.
  bool cf_grid_sharing = false;

  /// Shard workers / ingest lanes are pinned to cores, and whether that
  /// was the auto rule (>= 4 hardware threads) or an explicit override.
  bool pin_threads = false;
  bool auto_pin_threads = false;

  /// Filters the planner pushed below maps: (filter_name, map_name).
  std::vector<std::pair<std::string, std::string>> pushed_filters;

  /// Standing-query multiplexing (Planner::CompileMultiplexed): how many
  /// subscriptions the shared plan served at compile time, and the
  /// state-sharing decision for the aggregate stage — m output columns
  /// backed by s distinct accumulator slots (pane path; s < m when e.g.
  /// SUM and AVG of one attribute share a partial). Zeros on ordinary
  /// Compile() plans.
  bool multiplexed = false;
  size_t subscriptions_at_compile = 0;
  size_t multiplex_agg_columns = 0;
  size_t multiplex_partial_slots = 0;

  std::string ToString() const;
};

/// \brief A compiled, runnable physical plan.
///
/// Push batches at sources (ids via source()), call Finish() exactly once
/// after the last push, then read per-sink results. The facade hides
/// whether a DagExecutor or a ShardedExecutor runs underneath; the only
/// observable difference is the documented sharded-merge ordering (result
/// sets are shard-count-independent, equal-timestamp tie order is not).
class CompiledQuery {
 public:
  /// Source/sink handle by the name declared in the logical plan;
  /// kInvalidNode if absent.
  stream::ExecGraph::NodeId source(const std::string& name) const;
  stream::ExecGraph::NodeId sink(const std::string& name) const;

  /// Ingest lane a source is routed through. Pushes for sources on
  /// DIFFERENT lanes may run concurrently from different threads (the
  /// multi-producer contract); pushes for one source — or two sources
  /// sharing a lane — must be externally serialised. Single-DAG plans
  /// report lane 0 for every source and are single-threaded throughout.
  size_t ingest_lane(stream::ExecGraph::NodeId source) const;

  common::Status Push(stream::ExecGraph::NodeId source, stream::Tuple tuple);
  common::Status PushBatch(stream::ExecGraph::NodeId source,
                           const stream::TupleBatch& batch);
  common::Status PushBatch(stream::ExecGraph::NodeId source,
                           stream::TupleBatch&& batch);
  /// Event-time progress for an IDLE source: promises every future tuple
  /// pushed at `source` has timestamp >= watermark, letting windows close
  /// and the peer side of a join expire while this feed is silent (a
  /// sensor outage stops data, not time). Live sources need no explicit
  /// calls — the compiled plan generates watermarks periodically from
  /// ingested timestamps (see PlannerOptions::watermark_period_us). Same
  /// threading contract as PushBatch for the same source; monotonic per
  /// source (regressions are ignored).
  common::Status PushWatermark(stream::ExecGraph::NodeId source,
                               int64_t watermark);

  /// Live ingest re-batching target (moves under the feedback tuner when
  /// PlannerOptions::kAutoBatchSize is in effect; 0 on single-DAG plans).
  size_t current_target_batch_size() const;

  /// End-of-stream: flush windows/joins (and join + drain the shard
  /// workers when sharded). Idempotent; returns the first error any part
  /// of the plan hit.
  common::Status Finish();

  /// Accumulated output of a sink, by id or by name. Complete only after
  /// Finish().
  const stream::TupleBatch& Result(stream::ExecGraph::NodeId sink) const;
  const stream::TupleBatch& Result(const std::string& name) const;
  stream::TupleBatch TakeResult(stream::ExecGraph::NodeId sink);

  /// Per-node metrics (merged across shards when sharded).
  std::vector<stream::NodeMetrics> MetricsSnapshot() const;

  const PlanSummary& summary() const { return summary_; }
  size_t num_shards() const { return summary_.num_shards; }

 private:
  friend class Planner;
  CompiledQuery() = default;

  /// Creates (and owns) one SumStrategy instance for one shard's operator,
  /// wiring CF-inversion strategies to the shard's workspace.
  uncertain::SumStrategy* NewStrategy(uncertain::SumStrategyKind kind,
                                      size_t cf_grid_points,
                                      stats::CfInversionWorkspace* workspace);

  PlanSummary summary_;
  std::unordered_map<std::string, stream::ExecGraph::NodeId> sources_;
  std::unordered_map<std::string, stream::ExecGraph::NodeId> sinks_;
  /// Ingest lane per source node id (sharded backend only).
  std::unordered_map<stream::ExecGraph::NodeId, size_t> lane_of_source_;
  /// All shards' strategy instances (stable addresses; operators hold raw
  /// pointers into these).
  std::vector<std::unique_ptr<uncertain::SumStrategy>> strategies_;
  /// Shard context for the single-shard DagExecutor backend (the sharded
  /// backend uses the per-shard context owned by ShardedExecutor).
  stream::TupleArchive local_archive_;
  stats::CfInversionWorkspace local_workspace_;
  /// Single-DAG watermark generation state (the sharded backend generates
  /// lane-locally inside ShardedExecutor; same shared clock type).
  std::unordered_map<stream::ExecGraph::NodeId, stream::SourceWatermarkClock>
      source_clocks_;
  int64_t watermark_period_us_ = 0;
  int64_t watermark_lateness_us_ = 0;
  /// Exactly one of these backs the query.
  std::unique_ptr<stream::DagExecutor> dag_;
  std::unique_ptr<stream::ShardedExecutor> sharded_;
  bool finished_ = false;
  common::Status finish_status_;
};

/// \brief Many standing queries compiled onto ONE physical plan.
///
/// Produced by Planner::CompileMultiplexed from a template LogicalPlan
/// (source → [filters/maps] → window/group-by/aggregate → sink) and a
/// SubscriptionSet whose entries differ only in group-key scope and
/// HAVING threshold. The ingest-side API mirrors CompiledQuery — there is
/// exactly one source scan, one pane/window buffer, and one CF grid per
/// aggregate signature regardless of the subscription count. Each result
/// row the shared aggregate emits is routed by the predicate-index
/// dispatch operator: the sink accumulates tagged rows
/// [group_key, agg_1..agg_m, subscription_id] (ascending id per source
/// row), and per-subscription OnMatch callbacks fire as windows close.
/// Subscribe/Unsubscribe through subscriptions() stays legal while
/// streaming.
class MultiplexedQuery {
 public:
  stream::ExecGraph::NodeId source(const std::string& name) const;
  stream::ExecGraph::NodeId sink(const std::string& name) const;
  size_t ingest_lane(stream::ExecGraph::NodeId source) const;

  common::Status Push(stream::ExecGraph::NodeId source, stream::Tuple tuple);
  common::Status PushBatch(stream::ExecGraph::NodeId source,
                           const stream::TupleBatch& batch);
  common::Status PushBatch(stream::ExecGraph::NodeId source,
                           stream::TupleBatch&& batch);
  common::Status PushWatermark(stream::ExecGraph::NodeId source,
                               int64_t watermark);
  common::Status Finish();

  const stream::TupleBatch& Result(stream::ExecGraph::NodeId sink) const;
  const stream::TupleBatch& Result(const std::string& name) const;
  stream::TupleBatch TakeResult(stream::ExecGraph::NodeId sink);

  std::vector<stream::NodeMetrics> MetricsSnapshot() const;

  const PlanSummary& summary() const;
  size_t num_shards() const;

  /// The live registry this plan serves; mid-stream Subscribe/Unsubscribe
  /// take effect on the next window the dispatch routes.
  SubscriptionSet& subscriptions() { return *subscriptions_; }
  const std::shared_ptr<SubscriptionSet>& subscription_set() const {
    return subscriptions_;
  }

 private:
  friend class Planner;
  MultiplexedQuery() = default;

  std::unique_ptr<CompiledQuery> compiled_;
  std::shared_ptr<SubscriptionSet> subscriptions_;
};

class Planner {
 public:
  /// Validates `plan` and compiles it. The plan is copied where needed
  /// (closures are shared); it does not need to outlive the result.
  static common::Result<std::unique_ptr<CompiledQuery>> Compile(
      const LogicalPlan& plan, const PlannerOptions& options = {});

  /// Compiles `templ` once and binds `subscriptions` to it (the set must
  /// be fresh — one set per call). The template must be the multiplexable
  /// shape: exactly one source, one grouped windowed aggregate, one sink,
  /// no joins, and no explicit PartitionBy (the planner owns placement so
  /// the subscription table partitions exactly like the data). All
  /// physical planning (sharding, lanes, watermarks, pane vs. naive) is
  /// inherited from Compile; the per-shard dispatch operator is spliced
  /// between the aggregate and the sink.
  static common::Result<std::unique_ptr<MultiplexedQuery>> CompileMultiplexed(
      const LogicalPlan& templ, std::shared_ptr<SubscriptionSet> subscriptions,
      const PlannerOptions& options = {});

  /// Per-shard dispatch-operator factory threaded through graph building
  /// (an implementation detail of CompileMultiplexed; public only so the
  /// internal build helper can name the type).
  using DispatchFactory =
      std::function<common::Result<std::unique_ptr<stream::Operator>>(
          const stream::ShardContext&)>;

 private:
  static common::Result<std::unique_ptr<CompiledQuery>> CompileImpl(
      const LogicalPlan& plan, const PlannerOptions& options,
      const DispatchFactory* make_dispatch);
};

}  // namespace query
}  // namespace usp

#endif  // USP_QUERY_PLANNER_H_
