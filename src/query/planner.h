// The physical half of the query layer: Planner::Compile turns a validated
// LogicalPlan into the existing physical runtime and makes every physical
// choice the repo's examples used to hand-wire —
//
//   * aggregation path: PanedGroupByAggregateOperator (pane-incremental)
//     whenever the window overlaps (slide < size); the exact per-window
//     GroupByAggregateOperator for tumbling windows, where naive and paned
//     results are bitwise-identical anyway and naive avoids pane overhead;
//   * SUM/AVG strategies: one SumStrategy instance per shard (aggregate
//     state never crosses threads), with CF-inversion strategies wired to
//     the shard's CfInversionWorkspace (ShardContext::cf_workspace) so the
//     per-window FFT hot loop is allocation-free;
//   * execution backend: a single-threaded DagExecutor at num_shards == 1,
//     a ShardedExecutor otherwise;
//   * ingest partition key (sharded only): the caller's PartitionBy()
//     override if present, else derived from the group-by key — hashed
//     directly when only filters sit between the source and the group-by,
//     or by replaying the intermediate (pure) map functions on the ingest
//     thread when maps do. Underivable cases (joins with no override,
//     ungrouped aggregates, multiple group-bys) fail Compile() with an
//     actionable Status instead of silently mis-partitioning.
//
// The result is a CompiledQuery: one ingest/finish/result facade over both
// backends, plus a PlanSummary describing the decisions for logs, tests,
// and examples.

#ifndef USP_QUERY_PLANNER_H_
#define USP_QUERY_PLANNER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/logical_plan.h"
#include "stats/characteristic_function.h"
#include "stream/exec_graph.h"
#include "stream/pipeline.h"
#include "stream/sharded_executor.h"
#include "uncertain/sum_strategies.h"

namespace usp {
namespace query {

struct PlannerOptions {
  /// Worker shards. 1 compiles to a single-threaded DagExecutor; more
  /// compile to a ShardedExecutor with a derived (or overridden) key.
  size_t num_shards = 1;
  /// Per-shard ingest queue depth, in batches (backpressure beyond).
  size_t queue_capacity = 64;
  /// Archive retention for lineage resolution; negative keeps everything.
  int64_t archive_retention_us = -1;
  /// Sharded ingest merges undersized and splits oversized caller batches
  /// toward this many tuples; 0 forwards caller-sized batches unchanged.
  size_t target_batch_size = 0;

  /// Physical aggregation path selection. kAuto implements the planner
  /// rule (paned iff the window overlaps); the force knobs exist for
  /// benchmarks and equivalence tests, not applications.
  enum class AggregatePath { kAuto, kForceNaive, kForcePaned };
  AggregatePath aggregate_path = AggregatePath::kAuto;

  /// Grid resolution for CF-inversion SUM/AVG (FFT points / output bins).
  size_t cf_grid_points = 1024;
};

/// What the planner decided, for inspection.
struct PlanSummary {
  size_t num_shards = 1;
  bool sharded = false;

  enum class ShardKeySource {
    kNone,              ///< single shard, no partitioning
    kExplicit,          ///< caller's PartitionBy() override
    kGroupKey,          ///< hash of the group key, evaluated at ingest
    kReplayedGroupKey,  ///< group key after replaying upstream maps
  };
  ShardKeySource shard_key_source = ShardKeySource::kNone;

  struct AggregateChoice {
    std::string node_name;
    bool paned = false;  ///< pane-incremental vs. exact per-window
  };
  std::vector<AggregateChoice> aggregates;

  std::string ToString() const;
};

/// \brief A compiled, runnable physical plan.
///
/// Push batches at sources (ids via source()), call Finish() exactly once
/// after the last push, then read per-sink results. The facade hides
/// whether a DagExecutor or a ShardedExecutor runs underneath; the only
/// observable difference is the documented sharded-merge ordering (result
/// sets are shard-count-independent, equal-timestamp tie order is not).
class CompiledQuery {
 public:
  /// Source/sink handle by the name declared in the logical plan;
  /// kInvalidNode if absent.
  stream::ExecGraph::NodeId source(const std::string& name) const;
  stream::ExecGraph::NodeId sink(const std::string& name) const;

  common::Status Push(stream::ExecGraph::NodeId source, stream::Tuple tuple);
  common::Status PushBatch(stream::ExecGraph::NodeId source,
                           const stream::TupleBatch& batch);
  common::Status PushBatch(stream::ExecGraph::NodeId source,
                           stream::TupleBatch&& batch);

  /// End-of-stream: flush windows/joins (and join + drain the shard
  /// workers when sharded). Idempotent; returns the first error any part
  /// of the plan hit.
  common::Status Finish();

  /// Accumulated output of a sink, by id or by name. Complete only after
  /// Finish().
  const stream::TupleBatch& Result(stream::ExecGraph::NodeId sink) const;
  const stream::TupleBatch& Result(const std::string& name) const;
  stream::TupleBatch TakeResult(stream::ExecGraph::NodeId sink);

  /// Per-node metrics (merged across shards when sharded).
  std::vector<stream::NodeMetrics> MetricsSnapshot() const;

  const PlanSummary& summary() const { return summary_; }
  size_t num_shards() const { return summary_.num_shards; }

 private:
  friend class Planner;
  CompiledQuery() = default;

  /// Creates (and owns) one SumStrategy instance for one shard's operator,
  /// wiring CF-inversion strategies to the shard's workspace.
  uncertain::SumStrategy* NewStrategy(uncertain::SumStrategyKind kind,
                                      size_t cf_grid_points,
                                      stats::CfInversionWorkspace* workspace);

  PlanSummary summary_;
  std::unordered_map<std::string, stream::ExecGraph::NodeId> sources_;
  std::unordered_map<std::string, stream::ExecGraph::NodeId> sinks_;
  /// All shards' strategy instances (stable addresses; operators hold raw
  /// pointers into these).
  std::vector<std::unique_ptr<uncertain::SumStrategy>> strategies_;
  /// Shard context for the single-shard DagExecutor backend (the sharded
  /// backend uses the per-shard context owned by ShardedExecutor).
  stream::TupleArchive local_archive_;
  stats::CfInversionWorkspace local_workspace_;
  /// Exactly one of these backs the query.
  std::unique_ptr<stream::DagExecutor> dag_;
  std::unique_ptr<stream::ShardedExecutor> sharded_;
  bool finished_ = false;
  common::Status finish_status_;
};

class Planner {
 public:
  /// Validates `plan` and compiles it. The plan is copied where needed
  /// (closures are shared); it does not need to outlive the result.
  static common::Result<std::unique_ptr<CompiledQuery>> Compile(
      const LogicalPlan& plan, const PlannerOptions& options = {});
};

}  // namespace query
}  // namespace usp

#endif  // USP_QUERY_PLANNER_H_
