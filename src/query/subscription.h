// The declarative face of standing-query multiplexing: a SubscriptionSet
// holds many standing queries that differ only in the constants a shared
// template plan leaves open — which group key(s) to watch and what
// per-subscriber HAVING threshold to alert on. Planner::CompileMultiplexed
// binds a set to ONE physical plan (one source scan, one pane buffer, one
// CF grid per (window, aggregate) signature); each result row is then
// routed to matching subscribers by the predicate-index dispatch operator
// instead of N per-query filter chains.
//
//   auto subs = std::make_shared<query::SubscriptionSet>();
//   auto id = subs->Subscribe(query::Subscription::KeyEquals(Value(int64_t{7}))
//                                 .Where(0, 200.0, 0.9)
//                                 .OnMatch([](const Tuple& alert) { ... }));
//   auto mq = Planner::CompileMultiplexed(template_plan, subs);
//   ... push data; subscribe/unsubscribe stays legal mid-stream ...
//   subs->Unsubscribe(id);

#ifndef USP_QUERY_SUBSCRIPTION_H_
#define USP_QUERY_SUBSCRIPTION_H_

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/status.h"
#include "stream/subscription_index.h"
#include "stream/value.h"

namespace usp {
namespace query {

/// One standing query against a multiplexed template: a key scope plus an
/// optional threshold condition. Built fluently; immutable once
/// subscribed.
class Subscription {
 public:
  /// Watch every group the template produces.
  static Subscription AllGroups();
  /// Watch one group key (any Value kind; canonicalised the same way the
  /// group-by operator and the shard partitioner canonicalise keys).
  static Subscription KeyEquals(const stream::Value& key);
  /// Watch every int64 group key in [lo, hi] (inclusive).
  static Subscription KeyInRange(int64_t lo, int64_t hi);

  /// Per-subscriber HAVING clause: fire only when
  /// P(agg_column > threshold) >= min_confidence, where agg_column indexes
  /// the template's aggregate output columns (0 = first). Same arithmetic
  /// as uncertain::MakeHavingProbGreater on an independent query.
  Subscription& Where(size_t agg_column, double threshold,
                      double min_confidence);

  /// Callback invoked with each matching tagged row
  /// [group_key, agg_1..agg_m, subscription_id]. Runs on the worker
  /// thread that closed the window, outside subscription-table locks;
  /// keep it cheap and thread-safe across shards.
  Subscription& OnMatch(std::function<void(const stream::Tuple&)> callback);

  const stream::SubscriptionSpec& spec() const { return spec_; }

 private:
  Subscription() = default;
  stream::SubscriptionSpec spec_;
};

/// \brief A registry of standing queries sharing one template plan.
///
/// Thread-safe; Subscribe/Unsubscribe are legal before compilation
/// (entries are staged) and while the compiled plan is streaming (the
/// dispatch operator sees the change on the next window it routes). One
/// set binds to exactly one CompileMultiplexed call.
class SubscriptionSet {
 public:
  using Id = stream::SubscriptionId;

  SubscriptionSet() = default;
  SubscriptionSet(const SubscriptionSet&) = delete;
  SubscriptionSet& operator=(const SubscriptionSet&) = delete;

  /// Registers a standing query; the returned id is stable across
  /// compilation and unsubscribes.
  Id Subscribe(const Subscription& subscription);
  /// Removes a standing query; returns false for unknown ids. Shared
  /// dispatch state (the key's bucket) is released only when its last
  /// subscriber leaves.
  bool Unsubscribe(Id id);

  size_t size() const;

  /// Resident predicate-index state, summed over partitions (zeros before
  /// the set is bound to a compiled plan).
  stream::SubscriptionIndex::Stats IndexStats() const;

 private:
  friend class Planner;

  /// Planner hook: materialises the sharded table (one partition per
  /// shard) and flushes staged subscriptions into it. A set binds once.
  common::Status Bind(size_t num_partitions);
  std::shared_ptr<stream::ShardedSubscriptionTable> table() const;
  bool bound() const;

  mutable std::mutex mu_;
  Id next_id_ = 1;
  /// Staged until Bind; empty afterwards.
  std::unordered_map<Id, stream::SubscriptionSpec> pending_;
  std::shared_ptr<stream::ShardedSubscriptionTable> table_;
};

}  // namespace query
}  // namespace usp

#endif  // USP_QUERY_SUBSCRIPTION_H_
