#include "query/subscription.h"

#include <string>

namespace usp {
namespace query {

Subscription Subscription::AllGroups() {
  Subscription s;
  s.spec_.scope.kind = stream::SubscriptionScope::Kind::kAll;
  return s;
}

Subscription Subscription::KeyEquals(const stream::Value& key) {
  Subscription s;
  s.spec_.scope.kind = stream::SubscriptionScope::Kind::kExact;
  s.spec_.scope.exact_key = stream::CanonicalKeyString(key);
  return s;
}

Subscription Subscription::KeyInRange(int64_t lo, int64_t hi) {
  Subscription s;
  s.spec_.scope.kind = stream::SubscriptionScope::Kind::kIntRange;
  s.spec_.scope.range_lo = lo;
  s.spec_.scope.range_hi = hi;
  return s;
}

Subscription& Subscription::Where(size_t agg_column, double threshold,
                                  double min_confidence) {
  spec_.condition.active = true;
  spec_.condition.agg_column = agg_column;
  spec_.condition.threshold = threshold;
  spec_.condition.min_confidence = min_confidence;
  return *this;
}

Subscription& Subscription::OnMatch(
    std::function<void(const stream::Tuple&)> callback) {
  spec_.on_match = std::move(callback);
  return *this;
}

SubscriptionSet::Id SubscriptionSet::Subscribe(
    const Subscription& subscription) {
  std::lock_guard<std::mutex> lock(mu_);
  const Id id = next_id_++;
  if (table_ != nullptr) {
    // Bound: forward straight to the live table. Spec validation failures
    // (range lo > hi) would have been caught here pre-bind too, but the
    // fluent builder cannot return a Status — an invalid spec is simply
    // never resident, and the id reports size()-visible absence.
    auto status = table_->Subscribe(id, subscription.spec());
    (void)status;
  } else {
    pending_.emplace(id, subscription.spec());
  }
  return id;
}

bool SubscriptionSet::Unsubscribe(Id id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (table_ != nullptr) return table_->Unsubscribe(id);
  return pending_.erase(id) > 0;
}

size_t SubscriptionSet::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (table_ != nullptr) return table_->subscription_count();
  return pending_.size();
}

stream::SubscriptionIndex::Stats SubscriptionSet::IndexStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (table_ == nullptr) return {};
  return table_->TotalStats();
}

common::Status SubscriptionSet::Bind(size_t num_partitions) {
  std::lock_guard<std::mutex> lock(mu_);
  if (table_ != nullptr) {
    return common::Status::InvalidArgument(
        "SubscriptionSet is already bound to a compiled plan; use one set "
        "per CompileMultiplexed call");
  }
  auto table =
      std::make_shared<stream::ShardedSubscriptionTable>(num_partitions);
  for (auto& [id, spec] : pending_) {
    auto status = table->Subscribe(id, spec);
    if (!status.ok()) return status;
  }
  pending_.clear();
  table_ = std::move(table);
  return common::Status::OK();
}

std::shared_ptr<stream::ShardedSubscriptionTable> SubscriptionSet::table()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_;
}

bool SubscriptionSet::bound() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_ != nullptr;
}

}  // namespace query
}  // namespace usp
