#include "query/logical_plan.h"

#include <set>
#include <sstream>
#include <utility>

namespace usp {
namespace query {

const char* AggregateKindName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kSum:
      return "sum";
    case AggregateKind::kAvg:
      return "avg";
    case AggregateKind::kMax:
      return "max";
    case AggregateKind::kMin:
      return "min";
    case AggregateKind::kCount:
      return "count";
  }
  return "?";
}

namespace {

const char* NodeKindName(LogicalPlan::NodeKind kind) {
  switch (kind) {
    case LogicalPlan::NodeKind::kSource:
      return "source";
    case LogicalPlan::NodeKind::kFilter:
      return "filter";
    case LogicalPlan::NodeKind::kMap:
      return "map";
    case LogicalPlan::NodeKind::kAggregate:
      return "aggregate";
    case LogicalPlan::NodeKind::kJoin:
      return "join";
    case LogicalPlan::NodeKind::kSink:
      return "sink";
  }
  return "?";
}

size_t ExpectedInputs(LogicalPlan::NodeKind kind) {
  switch (kind) {
    case LogicalPlan::NodeKind::kSource:
      return 0;
    case LogicalPlan::NodeKind::kJoin:
      return 2;
    default:
      return 1;
  }
}

}  // namespace

LogicalPlan::NodeId LogicalPlan::AddNode(Node node) {
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

size_t LogicalPlan::PushFiltersBelowMaps(
    std::vector<std::pair<std::string, std::string>>* moved) {
  size_t total = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    // Consumer counts guard against fan-out: pushing a filter below a map
    // someone else also reads would filter that other branch too.
    std::vector<size_t> consumers(nodes_.size(), 0);
    for (const Node& n : nodes_) {
      for (NodeId in : n.inputs) {
        if (in < nodes_.size()) ++consumers[in];
      }
    }
    for (NodeId f = 0; f < nodes_.size() && !changed; ++f) {
      const Node& filter = nodes_[f];
      if (filter.kind != NodeKind::kFilter ||
          !filter.filter_reads.has_value() || filter.inputs.size() != 1) {
        continue;
      }
      const NodeId m = filter.inputs[0];
      if (m >= f) continue;  // malformed edge; Validate() reports it
      const Node& map = nodes_[m];
      if (map.kind != NodeKind::kMap || map.map_preserved_prefix == 0 ||
          map.inputs.size() != 1 || consumers[m] != 1) {
        continue;
      }
      bool reads_preserved = true;
      for (size_t attr : *filter.filter_reads) {
        if (attr >= map.map_preserved_prefix) {
          reads_preserved = false;
          break;
        }
      }
      if (!reads_preserved) continue;
      // Swap the two nodes' payloads in place: id m becomes the filter
      // (consuming the map's old input), id f becomes the map (consuming
      // the filter). Downstream consumers of f keep their edge and now
      // read the map — same content, computed on fewer tuples. Ids stay
      // creation-ordered, so the topological invariant holds.
      const std::vector<NodeId> map_inputs = nodes_[m].inputs;
      std::swap(nodes_[f], nodes_[m]);
      nodes_[m].inputs = map_inputs;
      nodes_[f].inputs = {m};
      if (moved != nullptr) {
        moved->emplace_back(nodes_[m].name, nodes_[f].name);
      }
      ++total;
      changed = true;  // rescan: the filter may sink below another map
    }
  }
  return total;
}

std::vector<std::optional<size_t>> LogicalPlan::OutputArities() const {
  std::vector<std::optional<size_t>> arity(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    // Guard against malformed edges; Validate() reports them properly.
    const bool inputs_ok = [&] {
      for (NodeId in : n.inputs) {
        if (in >= id) return false;
      }
      return !n.inputs.empty() || n.kind == NodeKind::kSource;
    }();
    if (!inputs_ok) continue;
    switch (n.kind) {
      case NodeKind::kSource:
        if (n.declared_arity > 0) arity[id] = n.declared_arity;
        break;
      case NodeKind::kFilter:
      case NodeKind::kSink:
        arity[id] = arity[n.inputs[0]];
        break;
      case NodeKind::kMap:
        if (n.map_output_arity > 0) arity[id] = n.map_output_arity;
        break;
      case NodeKind::kAggregate:
        arity[id] = 1 + n.aggregates.size();
        break;
      case NodeKind::kJoin:
        // The match function may append annotation attributes
        // (e.g. the match probability), so the output arity is opaque.
        break;
    }
  }
  return arity;
}

common::Status LogicalPlan::Validate() const {
  if (nodes_.empty()) {
    return common::Status::InvalidArgument("logical plan has no nodes");
  }
  size_t num_sources = 0, num_sinks = 0;
  std::set<std::string> source_names, sink_names;
  std::vector<size_t> consumers(nodes_.size(), 0);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    const std::string where =
        std::string(NodeKindName(n.kind)) + " node '" + n.name + "'";
    if (n.inputs.size() != ExpectedInputs(n.kind)) {
      return common::Status::InvalidArgument(
          where + " has " + std::to_string(n.inputs.size()) +
          " inputs, expected " + std::to_string(ExpectedInputs(n.kind)));
    }
    for (NodeId in : n.inputs) {
      if (in >= id) {
        return common::Status::InvalidArgument(
            where + " references input " + std::to_string(in) +
            " that does not precede it");
      }
      if (nodes_[in].kind == NodeKind::kSink) {
        return common::Status::InvalidArgument(
            where + " consumes sink '" + nodes_[in].name +
            "'; sinks are terminal");
      }
      ++consumers[in];
    }
    switch (n.kind) {
      case NodeKind::kSource:
        ++num_sources;
        if (!source_names.insert(n.name).second) {
          return common::Status::InvalidArgument("duplicate source name '" +
                                                 n.name + "'");
        }
        break;
      case NodeKind::kSink:
        ++num_sinks;
        if (!sink_names.insert(n.name).second) {
          return common::Status::InvalidArgument("duplicate sink name '" +
                                                 n.name + "'");
        }
        break;
      case NodeKind::kFilter:
        if (!n.filter) {
          return common::Status::InvalidArgument(where +
                                                 " has no predicate");
        }
        break;
      case NodeKind::kMap:
        if (!n.map) {
          return common::Status::InvalidArgument(where +
                                                 " has no map function");
        }
        break;
      case NodeKind::kJoin:
        if (n.inputs[0] == n.inputs[1]) {
          return common::Status::InvalidArgument(
              where + " joins a stream with itself; the two join inputs "
                      "must be distinct nodes (branch the query first)");
        }
        if (!n.join_match) {
          return common::Status::InvalidArgument(where +
                                                 " has no match function");
        }
        if (n.join_range_us <= 0) {
          return common::Status::InvalidArgument(
              where + " needs a positive window range");
        }
        break;
      case NodeKind::kAggregate: {
        if (!n.window.has_value()) {
          return common::Status::InvalidArgument(
              where + " has no window; streaming aggregates are windowed — "
                      "call Window(spec) before Aggregate()");
        }
        if (n.window->size_us <= 0 || n.window->slide_us <= 0 ||
            n.window->slide_us > n.window->size_us) {
          return common::Status::InvalidArgument(
              where + " has an invalid window (need 0 < slide <= size)");
        }
        if (n.aggregates.empty()) {
          return common::Status::InvalidArgument(
              where + " declares no aggregate columns");
        }
        if (n.group_key_attr.has_value() && n.group_key_fn) {
          return common::Status::InvalidArgument(
              where + " declares both an attribute group key and a custom "
                      "key function");
        }
        break;
      }
    }
  }
  if (num_sources == 0) {
    return common::Status::InvalidArgument("logical plan has no source");
  }
  if (num_sinks == 0) {
    return common::Status::InvalidArgument("logical plan has no sink");
  }
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].kind != NodeKind::kSink && consumers[id] == 0) {
      return common::Status::InvalidArgument(
          std::string(NodeKindName(nodes_[id].kind)) + " node '" +
          nodes_[id].name + "' feeds nothing; every non-sink node needs a "
                            "consumer");
    }
  }
  // Attribute references must fit the arity where it is known.
  const auto arity = OutputArities();
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.kind == NodeKind::kFilter && n.filter_reads.has_value()) {
      const std::optional<size_t> in_arity = arity[n.inputs[0]];
      if (in_arity.has_value()) {
        for (size_t attr : *n.filter_reads) {
          if (attr >= *in_arity) {
            return common::Status::InvalidArgument(
                "filter node '" + n.name + "' declares it reads attribute " +
                std::to_string(attr) + " (input tuples have " +
                std::to_string(*in_arity) + " attributes)");
          }
        }
      }
      continue;
    }
    if (n.kind == NodeKind::kMap && n.map_preserved_prefix > 0) {
      const std::optional<size_t> in_arity = arity[n.inputs[0]];
      if (in_arity.has_value() && n.map_preserved_prefix > *in_arity) {
        return common::Status::InvalidArgument(
            "map node '" + n.name + "' declares a preserved prefix of " +
            std::to_string(n.map_preserved_prefix) +
            " but its input tuples have only " + std::to_string(*in_arity) +
            " attributes");
      }
      if (n.map_output_arity > 0 &&
          n.map_preserved_prefix > n.map_output_arity) {
        return common::Status::InvalidArgument(
            "map node '" + n.name + "' declares a preserved prefix of " +
            std::to_string(n.map_preserved_prefix) +
            " wider than its declared output arity " +
            std::to_string(n.map_output_arity));
      }
      continue;
    }
    if (n.kind != NodeKind::kAggregate) continue;
    const std::optional<size_t> in_arity = arity[n.inputs[0]];
    if (!in_arity.has_value()) continue;
    const std::string where = "aggregate node '" + n.name + "'";
    if (n.group_key_attr.has_value() && *n.group_key_attr >= *in_arity) {
      return common::Status::InvalidArgument(
          where + " groups by unknown attribute " +
          std::to_string(*n.group_key_attr) + " (input tuples have " +
          std::to_string(*in_arity) + " attributes)");
    }
    for (const AggregateDecl& a : n.aggregates) {
      if (a.kind != AggregateKind::kCount && a.attr_index >= *in_arity) {
        return common::Status::InvalidArgument(
            where + " aggregate '" + a.output_name +
            "' reads unknown attribute " + std::to_string(a.attr_index) +
            " (input tuples have " + std::to_string(*in_arity) +
            " attributes)");
      }
    }
  }
  return common::Status::OK();
}

std::string LogicalPlan::ToString() const {
  std::ostringstream out;
  const auto arity = OutputArities();
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    out << id << ": " << NodeKindName(n.kind) << " '" << n.name << "'";
    if (!n.inputs.empty()) {
      out << " <-";
      for (NodeId in : n.inputs) out << " " << in;
    }
    if (n.kind == NodeKind::kAggregate) {
      if (n.window.has_value()) {
        out << " [window " << n.window->size_us << "/" << n.window->slide_us
            << " us]";
      } else {
        out << " [no window]";
      }
      if (n.group_key_attr.has_value()) {
        out << " [key attr " << *n.group_key_attr << "]";
      } else if (n.group_key_fn) {
        out << " [custom key]";
      } else {
        out << " [global]";
      }
      for (const AggregateDecl& a : n.aggregates) {
        out << " " << AggregateKindName(a.kind) << "(" << a.attr_index
            << ")->" << a.output_name;
      }
      if (n.having) out << " [having]";
    }
    if (n.kind == NodeKind::kJoin) {
      out << " [range " << n.join_range_us << " us]";
    }
    if (arity[id].has_value()) out << " (arity " << *arity[id] << ")";
    out << "\n";
  }
  return out.str();
}

}  // namespace query
}  // namespace usp
