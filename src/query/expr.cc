#include "query/expr.h"

#include <cstdio>

namespace usp {
namespace query {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
  }
  return "?";
}

bool ComparePredicate::Eval(const stream::Tuple& t) const {
  if (attr_index >= t.num_values()) return false;
  const stream::Value& v = t.value(attr_index);
  double x;
  if (v.is_numeric()) {
    x = v.AsDouble();
  } else if (v.is_distribution()) {
    x = v.AsDistribution()->Mean();
  } else {
    return false;
  }
  switch (op) {
    case CompareOp::kLt:
      return x < constant;
    case CompareOp::kLe:
      return x <= constant;
    case CompareOp::kGt:
      return x > constant;
    case CompareOp::kGe:
      return x >= constant;
    case CompareOp::kEq:
      return x == constant;
    case CompareOp::kNe:
      return x != constant;
  }
  return false;
}

std::string ComparePredicate::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "attr(%zu) %s %g", attr_index,
                CompareOpName(op), constant);
  return buf;
}

}  // namespace query
}  // namespace usp
