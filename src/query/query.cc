#include "query/query.h"

namespace usp {
namespace query {

/// The plan shared by every Query cursor spawned from one From() chain
/// (and by plans merged through Join). Builder misuse latches the first
/// error here; Build()/Compile() report it.
struct Query::State {
  LogicalPlan plan;
  common::Status error;
};

/// Per-branch accumulator for one Window/GroupBy/Aggregate/Having stage;
/// sealed into a kAggregate node by the next non-aggregate step.
struct Query::PendingAgg {
  std::string stage_name;
  std::optional<stream::WindowSpec> window;
  std::optional<size_t> key_attr;
  stream::GroupByAggregateOperator::KeyFn key_fn;
  std::vector<AggregateDecl> aggregates;
  stream::GroupByAggregateOperator::HavingFn having;
};

// Shape problems in a sealed stage (no window, no aggregates, ...) are
// intentionally left for LogicalPlan::Validate() so every failure surfaces
// at Compile() with one consistent Status.
LogicalPlan::NodeId Query::SealInto(const PendingAgg& pending,
                                    LogicalPlan::NodeId input,
                                    LogicalPlan* into) {
  LogicalPlan::Node node;
  node.kind = LogicalPlan::NodeKind::kAggregate;
  node.name = pending.stage_name.empty()
                  ? "aggregate@" + std::to_string(into->num_nodes())
                  : pending.stage_name;
  node.inputs = {input};
  node.window = pending.window;
  node.group_key_attr = pending.key_attr;
  node.group_key_fn = pending.key_fn;
  node.aggregates = pending.aggregates;
  node.having = pending.having;
  return into->AddNode(std::move(node));
}

Query Query::From(std::string source_name, size_t arity) {
  Query q;
  q.state_ = std::make_shared<State>();
  LogicalPlan::Node node;
  node.kind = LogicalPlan::NodeKind::kSource;
  node.name = std::move(source_name);
  node.declared_arity = arity;
  q.cursor_ = q.state_->plan.AddNode(std::move(node));
  return q;
}

Query Query::WithError(std::string msg) const {
  if (state_ && state_->error.ok()) {
    state_->error = common::Status::InvalidArgument(std::move(msg));
  }
  return *this;
}

bool Query::has_pending() const {
  return pending_ != nullptr &&
         (pending_->window.has_value() || pending_->key_attr.has_value() ||
          pending_->key_fn || !pending_->aggregates.empty() ||
          pending_->having != nullptr);
}

LogicalPlan::NodeId Query::SealPending(LogicalPlan* into) const {
  return SealInto(*pending_, cursor_, into);
}

Query Query::Filter(std::string name,
                    stream::FilterOperator::Predicate pred) const {
  if (!state_) return *this;
  if (at_sink_) return WithError("cannot add Filter after Sink");
  Query next = *this;
  if (has_pending()) {
    next.cursor_ = SealPending(&state_->plan);
    next.pending_.reset();
  }
  LogicalPlan::Node node;
  node.kind = LogicalPlan::NodeKind::kFilter;
  node.name = std::move(name);
  node.inputs = {next.cursor_};
  node.filter = std::move(pred);
  next.cursor_ = state_->plan.AddNode(std::move(node));
  return next;
}

Query Query::Filter(std::string name, stream::FilterOperator::Predicate pred,
                    std::vector<size_t> reads_attrs) const {
  Query next = Filter(std::move(name), std::move(pred));
  if (!next.state_ || !next.state_->error.ok() || next.at_sink_) return next;
  // The node just appended is the filter; annotate its read set so the
  // planner may push it below preserved-prefix maps.
  LogicalPlan::Node* node =
      next.state_->plan.mutable_node(next.cursor_);
  if (node != nullptr && node->kind == LogicalPlan::NodeKind::kFilter) {
    node->filter_reads = std::move(reads_attrs);
  }
  return next;
}

Query Query::Filter(std::string name, const ComparePredicate& pred) const {
  ComparePredicate p = pred;
  return Filter(
      std::move(name),
      [p](const stream::Tuple& t) { return p.Eval(t); },
      /*reads_attrs=*/{pred.attr_index});
}

Query Query::Map(std::string name, stream::MapOperator::MapFn fn,
                 size_t output_arity, size_t preserved_prefix) const {
  if (!state_) return *this;
  if (at_sink_) return WithError("cannot add Map after Sink");
  Query next = *this;
  if (has_pending()) {
    next.cursor_ = SealPending(&state_->plan);
    next.pending_.reset();
  }
  LogicalPlan::Node node;
  node.kind = LogicalPlan::NodeKind::kMap;
  node.name = std::move(name);
  node.inputs = {next.cursor_};
  node.map = std::move(fn);
  node.map_output_arity = output_arity;
  node.map_preserved_prefix = preserved_prefix;
  next.cursor_ = state_->plan.AddNode(std::move(node));
  return next;
}

Query Query::Window(stream::WindowSpec spec) const {
  if (!state_) return *this;
  if (at_sink_) return WithError("cannot add Window after Sink");
  Query next = *this;
  if (pending_ && pending_->window.has_value()) {
    // A second Window starts a new stage over the previous one's output.
    next.cursor_ = SealPending(&state_->plan);
    next.pending_.reset();
  }
  next.pending_ = next.pending_ ? std::make_shared<PendingAgg>(*next.pending_)
                                : std::make_shared<PendingAgg>();
  next.pending_->window = spec;
  return next;
}

Query Query::GroupBy(size_t key_attr) const {
  if (!state_) return *this;
  if (at_sink_) return WithError("cannot add GroupBy after Sink");
  if (pending_ && !pending_->aggregates.empty()) {
    return WithError("GroupBy must precede Aggregate (declare the keys "
                     "before the aggregates)");
  }
  if (pending_ && (pending_->key_attr.has_value() || pending_->key_fn)) {
    return WithError("duplicate GroupBy in one aggregate stage");
  }
  Query next = *this;
  next.pending_ = next.pending_ ? std::make_shared<PendingAgg>(*next.pending_)
                                : std::make_shared<PendingAgg>();
  next.pending_->key_attr = key_attr;
  return next;
}

Query Query::GroupBy(stream::GroupByAggregateOperator::KeyFn key_fn) const {
  if (!state_) return *this;
  if (at_sink_) return WithError("cannot add GroupBy after Sink");
  if (pending_ && !pending_->aggregates.empty()) {
    return WithError("GroupBy must precede Aggregate (declare the keys "
                     "before the aggregates)");
  }
  if (pending_ && (pending_->key_attr.has_value() || pending_->key_fn)) {
    return WithError("duplicate GroupBy in one aggregate stage");
  }
  Query next = *this;
  next.pending_ = next.pending_ ? std::make_shared<PendingAgg>(*next.pending_)
                                : std::make_shared<PendingAgg>();
  next.pending_->key_fn = std::move(key_fn);
  return next;
}

Query Query::Aggregate(AggregateDecl decl) const {
  if (!state_) return *this;
  if (at_sink_) return WithError("cannot add Aggregate after Sink");
  Query next = *this;
  next.pending_ = next.pending_ ? std::make_shared<PendingAgg>(*next.pending_)
                                : std::make_shared<PendingAgg>();
  if (next.pending_->stage_name.empty()) {
    next.pending_->stage_name = decl.output_name + "_agg";
  }
  next.pending_->aggregates.push_back(std::move(decl));
  return next;
}

Query Query::Sum(std::string output_name, size_t attr_index,
                 uncertain::SumStrategyKind strategy) const {
  AggregateDecl decl;
  decl.kind = AggregateKind::kSum;
  decl.output_name = std::move(output_name);
  decl.attr_index = attr_index;
  decl.strategy = strategy;
  return Aggregate(std::move(decl));
}

Query Query::Avg(std::string output_name, size_t attr_index,
                 uncertain::SumStrategyKind strategy) const {
  AggregateDecl decl;
  decl.kind = AggregateKind::kAvg;
  decl.output_name = std::move(output_name);
  decl.attr_index = attr_index;
  decl.strategy = strategy;
  return Aggregate(std::move(decl));
}

Query Query::Max(std::string output_name, size_t attr_index,
                 size_t bins) const {
  AggregateDecl decl;
  decl.kind = AggregateKind::kMax;
  decl.output_name = std::move(output_name);
  decl.attr_index = attr_index;
  decl.bins = bins;
  return Aggregate(std::move(decl));
}

Query Query::Min(std::string output_name, size_t attr_index,
                 size_t bins) const {
  AggregateDecl decl;
  decl.kind = AggregateKind::kMin;
  decl.output_name = std::move(output_name);
  decl.attr_index = attr_index;
  decl.bins = bins;
  return Aggregate(std::move(decl));
}

Query Query::Count(std::string output_name) const {
  AggregateDecl decl;
  decl.kind = AggregateKind::kCount;
  decl.output_name = std::move(output_name);
  return Aggregate(std::move(decl));
}

Query Query::Having(
    stream::GroupByAggregateOperator::HavingFn having) const {
  if (!state_) return *this;
  if (at_sink_) return WithError("cannot add Having after Sink");
  if (!pending_ || pending_->aggregates.empty()) {
    return WithError("Having requires a preceding Aggregate in the same "
                     "window stage");
  }
  if (pending_->having) {
    return WithError("duplicate Having in one aggregate stage");
  }
  Query next = *this;
  next.pending_ = std::make_shared<PendingAgg>(*next.pending_);
  next.pending_->having = std::move(having);
  return next;
}

Query Query::Join(const Query& right, int64_t range_us,
                  stream::SlidingWindowJoin::MatchFn match,
                  std::string name) const {
  if (!state_) return *this;
  if (at_sink_) return WithError("cannot add Join after Sink");
  if (!right.state_) return WithError("join input is an empty query");
  if (right.at_sink_) {
    return WithError("join input '" + name +
                     "' ends at a Sink; branch before Sink instead");
  }
  if (right.state_ != state_ && !right.state_->error.ok()) {
    if (state_->error.ok()) state_->error = right.state_->error;
    return *this;
  }
  Query next = *this;
  if (has_pending()) {
    next.cursor_ = SealPending(&state_->plan);
    next.pending_.reset();
  }
  LogicalPlan::NodeId right_cursor;
  if (right.state_ == state_) {
    right_cursor = right.has_pending() ? right.SealPending(&state_->plan)
                                       : right.cursor_;
  } else {
    // Merge the other builder's plan: copy its nodes with re-based ids.
    const LogicalPlan& rplan = right.state_->plan;
    const LogicalPlan::NodeId offset =
        static_cast<LogicalPlan::NodeId>(state_->plan.num_nodes());
    for (LogicalPlan::NodeId id = 0; id < rplan.num_nodes(); ++id) {
      LogicalPlan::Node copy = rplan.node(id);
      for (LogicalPlan::NodeId& in : copy.inputs) in += offset;
      state_->plan.AddNode(std::move(copy));
    }
    if (!state_->plan.partition_key() && rplan.partition_key()) {
      state_->plan.SetPartitionKey(rplan.partition_key());
    }
    right_cursor = right.cursor_ + offset;
    if (right.has_pending()) {
      right_cursor =
          SealInto(*right.pending_, right_cursor, &state_->plan);
    }
  }
  if (right_cursor == next.cursor_) {
    return WithError("join node '" + name +
                     "' would join a stream with itself; the two inputs "
                     "must be distinct");
  }
  LogicalPlan::Node node;
  node.kind = LogicalPlan::NodeKind::kJoin;
  node.name = std::move(name);
  node.inputs = {next.cursor_, right_cursor};
  node.join_range_us = range_us;
  node.join_match = std::move(match);
  next.cursor_ = state_->plan.AddNode(std::move(node));
  return next;
}

Query Query::Sink(std::string name) const {
  if (!state_) return *this;
  if (at_sink_) return WithError("cannot add Sink after Sink");
  Query next = *this;
  if (has_pending()) {
    next.cursor_ = SealPending(&state_->plan);
    next.pending_.reset();
  }
  LogicalPlan::Node node;
  node.kind = LogicalPlan::NodeKind::kSink;
  node.name = std::move(name);
  node.inputs = {next.cursor_};
  next.cursor_ = state_->plan.AddNode(std::move(node));
  next.at_sink_ = true;
  return next;
}

Query Query::PartitionBy(stream::ShardedExecutor::KeyFn key_fn) const {
  if (!state_) return *this;
  state_->plan.SetPartitionKey(std::move(key_fn));
  return *this;
}

common::Result<LogicalPlan> Query::Build() const {
  if (!state_) {
    return common::Status::InvalidArgument("empty query");
  }
  if (!state_->error.ok()) return state_->error;
  LogicalPlan snapshot = state_->plan;
  if (has_pending()) SealInto(*pending_, cursor_, &snapshot);
  return snapshot;
}

}  // namespace query
}  // namespace usp
