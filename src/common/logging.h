// Minimal leveled logging for the library. Kept deliberately small: the
// stream engine reports metrics through its own channels; logging is for
// diagnostics only and is compiled in at all levels, filtered at runtime.

#ifndef USP_COMMON_LOGGING_H_
#define USP_COMMON_LOGGING_H_

#include <cstdio>
#include <sstream>
#include <string>

namespace usp {
namespace common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global runtime log threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emit a single log line (thread-safe at the stdio level).
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);

namespace internal {

/// Stream-style capture used by the USP_LOG macro.
class LogCapture {
 public:
  LogCapture(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogCapture() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogCapture& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace common
}  // namespace usp

#define USP_LOG(level)                                                   \
  ::usp::common::internal::LogCapture(::usp::common::LogLevel::k##level, \
                                      __FILE__, __LINE__)

#endif  // USP_COMMON_LOGGING_H_
