// Small numeric helpers shared across the statistics substrate.

#ifndef USP_COMMON_MATH_UTIL_H_
#define USP_COMMON_MATH_UTIL_H_

#include <cmath>
#include <complex>
#include <cstdint>
#include <vector>

namespace usp {
namespace common {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kSqrt2 = 1.41421356237309504880;
inline constexpr double kSqrt2Pi = 2.50662827463100050242;

/// log(sum_i exp(x_i)) computed stably; returns -inf for an empty input.
double LogSumExp(const std::vector<double>& xs);

/// Standard normal pdf phi(z).
double StdNormalPdf(double z);
/// Standard normal cdf Phi(z) via erfc for accuracy in the tails.
double StdNormalCdf(double z);
/// Inverse standard normal cdf (Acklam's rational approximation refined by
/// one Halley step); |error| < 1e-12 over (0,1).
double StdNormalQuantile(double p);

/// Numerically stable mean and (population) variance of weighted samples.
/// Weights need not be normalized. Returns {mean, variance}; variance is 0
/// for fewer than one effective sample.
struct MeanVar {
  double mean = 0.0;
  double variance = 0.0;
};
MeanVar WeightedMeanVar(const std::vector<double>& values,
                        const std::vector<double>& weights);

/// Clamp helper (std::clamp without the include in hot headers).
inline double Clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// True if |a-b| <= atol + rtol*max(|a|,|b|).
inline bool AlmostEqual(double a, double b, double atol = 1e-12,
                        double rtol = 1e-9) {
  return std::fabs(a - b) <=
         atol + rtol * std::fmax(std::fabs(a), std::fabs(b));
}

/// In-place iterative radix-2 Cooley-Tukey FFT. data.size() must be a power
/// of two. inverse=true applies the conjugate transform and divides by N.
void Fft(std::vector<std::complex<double>>& data, bool inverse);

/// Smallest power of two >= n (n >= 1).
size_t NextPow2(size_t n);

/// Largest multiple of m <= v, for m > 0; floor semantics for negative v
/// (unlike C++ truncating division). The single source of truth for the
/// window/pane boundary arithmetic in the stream layer.
inline int64_t FloorToMultiple(int64_t v, int64_t m) {
  int64_t r = v % m;
  if (r < 0) r += m;
  return v - r;
}

/// Smallest multiple of m >= v, for m > 0.
inline int64_t CeilToMultiple(int64_t v, int64_t m) {
  return FloorToMultiple(v + m - 1, m);
}

}  // namespace common
}  // namespace usp

#endif  // USP_COMMON_MATH_UTIL_H_
