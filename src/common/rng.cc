#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace usp {
namespace common {

namespace {
uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& w : s_) w = SplitMix64(x);
  // Avoid the all-zero state, which is a fixed point of the recurrence.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // = 2^64 mod n
  uint64_t r;
  do {
    r = Next();
  } while (r < threshold);
  return r % n;
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double lambda) {
  assert(lambda > 0.0);
  double u;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::Gamma(double shape, double scale) {
  assert(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and correct with the standard power-of-uniform trick.
    const double u = std::max(Uniform(), 1e-300);
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Gaussian();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return weights.size();
  double u = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace common
}  // namespace usp
