// Wall-clock stopwatch used by benches and the executor's per-operator
// metrics.

#ifndef USP_COMMON_STOPWATCH_H_
#define USP_COMMON_STOPWATCH_H_

#include <chrono>

namespace usp {
namespace common {

/// \brief Monotonic stopwatch with microsecond resolution.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Reset the epoch to now.
  void Restart();

  /// Seconds elapsed since construction or last Restart().
  double ElapsedSeconds() const;
  /// Milliseconds elapsed.
  double ElapsedMillis() const;
  /// Microseconds elapsed.
  double ElapsedMicros() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace common
}  // namespace usp

#endif  // USP_COMMON_STOPWATCH_H_
