#include "common/logging.h"

#include <atomic>
#include <cstring>

namespace usp {
namespace common {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  if (static_cast<int>(level) < g_level.load()) return;
  fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file), line,
          msg.c_str());
}

}  // namespace common
}  // namespace usp
