// Status / Result error model, following the RocksDB/Arrow idiom: no
// exceptions cross library boundaries; fallible functions return Status or
// Result<T>.

#ifndef USP_COMMON_STATUS_H_
#define USP_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace usp {
namespace common {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kNumericError,     ///< divergence, non-convergence, NaN/Inf encountered
  kResourceExhausted,
  kUnimplemented,
  kInternal,
};

/// Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (the
/// message is only allocated on error paths).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NumericError(std::string msg) {
    return Status(StatusCode::kNumericError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result. Access via ValueOrDie()/value() only after
/// checking ok(); MoveValueUnsafe() for hot paths that already checked.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& MoveValueUnsafe() { return std::move(*value_); }

  const T& ValueOrDie() const& {
    if (!ok()) {
      // Library-boundary invariant violation; abort loudly rather than UB.
      fprintf(stderr, "Result::ValueOrDie on error: %s\n",
              status_.ToString().c_str());
      abort();
    }
    return *value_;
  }

  /// Value if ok, otherwise the supplied fallback.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace common
}  // namespace usp

/// Propagate a non-OK Status from an expression, RocksDB-style.
#define USP_RETURN_NOT_OK(expr)                  \
  do {                                           \
    ::usp::common::Status _st = (expr);          \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Assign from a Result<T> or propagate its error.
#define USP_ASSIGN_OR_RETURN(lhs, rexpr)         \
  auto _res_##__LINE__ = (rexpr);                \
  if (!_res_##__LINE__.ok()) return _res_##__LINE__.status(); \
  lhs = _res_##__LINE__.MoveValueUnsafe();

#endif  // USP_COMMON_STATUS_H_
