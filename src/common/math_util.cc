#include "common/math_util.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace usp {
namespace common {

double LogSumExp(const std::vector<double>& xs) {
  if (xs.empty()) return -std::numeric_limits<double>::infinity();
  const double m = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(m)) return m;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - m);
  return m + std::log(sum);
}

double StdNormalPdf(double z) {
  return std::exp(-0.5 * z * z) / kSqrt2Pi;
}

double StdNormalCdf(double z) { return 0.5 * std::erfc(-z / kSqrt2); }

double StdNormalQuantile(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam's approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step using the exact cdf.
  const double e = StdNormalCdf(x) - p;
  const double u = e * kSqrt2Pi * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

MeanVar WeightedMeanVar(const std::vector<double>& values,
                        const std::vector<double>& weights) {
  assert(values.size() == weights.size());
  MeanVar out;
  double wsum = 0.0;
  // West's incremental algorithm: single pass, numerically stable.
  double mean = 0.0;
  double m2 = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    const double w = weights[i];
    if (w <= 0.0) continue;
    wsum += w;
    const double delta = values[i] - mean;
    mean += (w / wsum) * delta;
    m2 += w * delta * (values[i] - mean);
  }
  if (wsum <= 0.0) return out;
  out.mean = mean;
  out.variance = m2 / wsum;
  return out;
}

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void Fft(std::vector<std::complex<double>>& data, bool inverse) {
  const size_t n = data.size();
  assert((n & (n - 1)) == 0 && "FFT size must be a power of two");
  if (n <= 1) return;
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * kPi / static_cast<double>(len) *
                       (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

}  // namespace common
}  // namespace usp
