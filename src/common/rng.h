// Deterministic, fast random number generation for simulators and
// sampling-based inference. The engine is xoshiro256++ (public-domain
// algorithm by Blackman & Vigna) which is much faster than std::mt19937_64
// and has better statistical properties; determinism across platforms is
// required so that simulated traces are reproducible in tests and benches.

#ifndef USP_COMMON_RNG_H_
#define USP_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace usp {
namespace common {

/// \brief xoshiro256++ pseudo-random generator with distribution helpers.
///
/// Satisfies UniformRandomBitGenerator so it can also be used with
/// <random> distributions, but the member helpers avoid libstdc++
/// implementation differences for cross-platform determinism.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit state words from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64 bits.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform double in [0, 1).
  double Uniform();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);
  /// Standard normal via Box-Muller with caching of the second deviate.
  double Gaussian();
  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);
  /// Exponential with the given rate lambda (> 0).
  double Exponential(double lambda);
  /// Gamma(shape k > 0, scale theta > 0) via Marsaglia-Tsang.
  double Gamma(double shape, double scale);
  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);
  /// Index sampled from unnormalized non-negative weights.
  /// Returns weights.size() if all weights are zero.
  size_t Categorical(const std::vector<double>& weights);

  /// Independent child generator; used to give each simulated entity its
  /// own stream so adding entities does not perturb existing ones.
  Rng Fork();

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace common
}  // namespace usp

#endif  // USP_COMMON_RNG_H_
