#include "radar/pulse_simulator.h"

#include <cassert>
#include <cmath>

namespace usp {
namespace radar {

double Vortex::TangentialSpeed(double r_m) const {
  if (r_m <= 0.0) return 0.0;
  if (r_m <= core_radius_m) {
    // Solid-body rotation inside the core.
    return max_tangential_mps * r_m / core_radius_m;
  }
  // Potential-vortex decay outside.
  return max_tangential_mps * core_radius_m / r_m;
}

double WindField::RadialVelocity(const RadarSite& site, double x_m,
                                 double y_m) const {
  double u = background_u_mps;
  double v = background_v_mps;
  for (const Vortex& vx : vortices) {
    const double dx = x_m - vx.x_m;
    const double dy = y_m - vx.y_m;
    const double r = std::sqrt(dx * dx + dy * dy);
    if (r < 1e-6) continue;
    const double vt = vx.TangentialSpeed(r);
    // Counter-clockwise rotation: tangential direction (-dy, dx)/r.
    u += vt * (-dy / r);
    v += vt * (dx / r);
  }
  const double lx = x_m - site.x_m;
  const double ly = y_m - site.y_m;
  const double range = std::sqrt(lx * lx + ly * ly);
  if (range < 1e-6) return 0.0;
  return (u * lx + v * ly) / range;
}

double WindField::ReflectivityDb(double x_m, double y_m) const {
  // Broad storm background with Gaussian bumps around the vortices.
  double z = 20.0;
  for (const Vortex& vx : vortices) {
    const double dx = x_m - vx.x_m;
    const double dy = y_m - vx.y_m;
    const double r2 = dx * dx + dy * dy;
    const double s = 4.0 * vx.core_radius_m;
    z += 30.0 * std::exp(-r2 / (2.0 * s * s));
  }
  return z;
}

PulseSimulator::PulseSimulator(const PulseSimConfig& config,
                               const WindField& wind)
    : config_(config), wind_(wind), rng_(config.seed) {
  assert(config_.num_gates > 0);
  azimuth_ = config_.sector_start_rad;
  phase_.resize(config_.num_gates);
  for (double& p : phase_) p = rng_.Uniform(0.0, 2.0 * M_PI);
  // MA coefficients: geometric taper 0.7^j, j = 1..q.
  ma_coeffs_.resize(config_.noise_ma_order);
  double c = 0.7;
  for (double& coef : ma_coeffs_) {
    coef = c;
    c *= 0.7;
  }
  const size_t hist = config_.noise_ma_order + 1;
  noise_hist_i_.assign(config_.num_gates, std::vector<double>(hist, 0.0));
  noise_hist_q_.assign(config_.num_gates, std::vector<double>(hist, 0.0));
}

double PulseSimulator::TrueRadialVelocity(double azimuth_rad,
                                          size_t gate) const {
  const double range =
      (static_cast<double>(gate) + 0.5) * config_.gate_spacing_m;
  const double x = config_.site.x_m + range * std::cos(azimuth_rad);
  const double y = config_.site.y_m + range * std::sin(azimuth_rad);
  return wind_.RadialVelocity(config_.site, x, y);
}

double PulseSimulator::RawBytesPerSecond() const {
  return kPulsesPerSecond * static_cast<double>(config_.num_gates) *
         sizeof(GateSample);
}

Pulse PulseSimulator::NextPulse() {
  const double dt = 1.0 / kPulsesPerSecond;
  Pulse pulse;
  pulse.time_s = now_s_;
  pulse.azimuth_rad = azimuth_;
  pulse.gates.resize(config_.num_gates);

  const size_t hist = config_.noise_ma_order + 1;
  const size_t pos = hist_pos_ % hist;
  for (size_t g = 0; g < config_.num_gates; ++g) {
    const double range =
        (static_cast<double>(g) + 0.5) * config_.gate_spacing_m;
    const double x = config_.site.x_m + range * std::cos(azimuth_);
    const double y = config_.site.y_m + range * std::sin(azimuth_);
    const double v_r = wind_.RadialVelocity(config_.site, x, y);
    const double z_db = wind_.ReflectivityDb(x, y);
    // Signal amplitude from reflectivity (normalized so 20 dBZ -> 1.0).
    const double amp = std::pow(10.0, (z_db - 20.0) / 40.0);
    // Pulse-pair phase advance: d_phi = 4 pi T v / lambda.
    phase_[g] += 4.0 * M_PI * dt * v_r / kWavelengthM;
    if (phase_[g] > 2.0 * M_PI) phase_[g] -= 2.0 * M_PI;
    if (phase_[g] < 0.0) phase_[g] += 2.0 * M_PI;

    // MA(q)-correlated complex noise.
    const double ei = rng_.Gaussian(0.0, config_.noise_stddev);
    const double eq = rng_.Gaussian(0.0, config_.noise_stddev);
    auto& hi = noise_hist_i_[g];
    auto& hq = noise_hist_q_[g];
    double ni = ei;
    double nq = eq;
    for (size_t j = 0; j < ma_coeffs_.size(); ++j) {
      const size_t back = (pos + hist - 1 - j) % hist;
      ni += ma_coeffs_[j] * hi[back];
      nq += ma_coeffs_[j] * hq[back];
    }
    hi[pos] = ei;
    hq[pos] = eq;

    GateSample& s = pulse.gates[g];
    s.i = static_cast<float>(amp * std::cos(phase_[g]) + ni);
    s.q = static_cast<float>(amp * std::sin(phase_[g]) + nq);
    s.power = static_cast<float>(s.i * s.i + s.q * s.q);
    const double noise_pow = 2.0 * config_.noise_stddev *
                             config_.noise_stddev *
                             (1.0 + 0.49 + 0.24 + 0.12);  // rough MA gain
    s.quality = static_cast<float>(amp * amp / (amp * amp + noise_pow));
  }
  ++hist_pos_;

  // Advance time and antenna.
  now_s_ += dt;
  const double step = config_.rotation_rate_rad_per_s * dt;
  if (sweeping_up_) {
    azimuth_ += step;
    if (azimuth_ >= config_.sector_end_rad) {
      azimuth_ = config_.sector_end_rad;
      sweeping_up_ = false;
    }
  } else {
    azimuth_ -= step;
    if (azimuth_ <= config_.sector_start_rad) {
      azimuth_ = config_.sector_start_rad;
      sweeping_up_ = true;
    }
  }
  return pulse;
}

}  // namespace radar
}  // namespace usp
