// Synthetic radar pulse generator (DESIGN.md substitution for the CASA
// May 9 2007 raw trace): a sector-scanning X-band radar observing a wind
// field with embedded Rankine-vortex tornado signatures. Per-gate I/Q time
// series follow the standard weather-signal model — a complex sinusoid
// whose pulse-to-pulse phase advance encodes radial velocity, amplitude
// from the reflectivity field, plus MA(q)-correlated receiver noise (the
// §4.4 correlation structure the averaging analysis relies on).

#ifndef USP_RADAR_PULSE_SIMULATOR_H_
#define USP_RADAR_PULSE_SIMULATOR_H_

#include "common/rng.h"
#include "radar/types.h"

namespace usp {
namespace radar {

/// An idealized tornado: a Rankine vortex at a fixed location.
struct Vortex {
  double x_m = 0.0;
  double y_m = 0.0;
  double core_radius_m = 500.0;
  double max_tangential_mps = 40.0;

  /// Tangential wind speed at distance r from the center.
  double TangentialSpeed(double r_m) const;
};

/// Scene description: background wind plus vortices plus storm reflectivity.
struct WindField {
  double background_u_mps = 4.0;  ///< west-east component
  double background_v_mps = 2.0;  ///< south-north component
  std::vector<Vortex> vortices;

  /// Radial velocity seen by a radar at `site` looking at ground position
  /// (x, y): projection of the total wind onto the line of sight.
  double RadialVelocity(const RadarSite& site, double x_m, double y_m) const;
  /// Reflectivity (dBZ) at a ground position: storm background elevated
  /// near vortices.
  double ReflectivityDb(double x_m, double y_m) const;
};

/// Simulator configuration.
struct PulseSimConfig {
  RadarSite site;
  size_t num_gates = kDefaultNumGates;
  double gate_spacing_m = kGateSpacingM;
  double sector_start_rad = 0.0;
  double sector_end_rad = 1.5707963267948966;  ///< 90 degree sector
  double rotation_rate_rad_per_s = 0.16535;    ///< sweeps a sector in ~9.5 s
  double noise_stddev = 0.35;    ///< receiver noise amplitude (rel. signal 1)
  size_t noise_ma_order = 3;     ///< MA(q) correlation of the noise
  uint64_t seed = 2007;
};

/// \brief Streaming pulse source: NextPulse() yields pulses at 2000 Hz as
/// the antenna sweeps the sector back and forth.
class PulseSimulator {
 public:
  PulseSimulator(const PulseSimConfig& config, const WindField& wind);

  /// Generate the next pulse (advances time by 1/2000 s).
  Pulse NextPulse();

  const PulseSimConfig& config() const { return config_; }
  const WindField& wind() const { return wind_; }
  double now_s() const { return now_s_; }

  /// Ground-truth radial velocity for a gate at the given azimuth.
  double TrueRadialVelocity(double azimuth_rad, size_t gate) const;

  /// Bytes of raw data per second at this configuration (205 Mb/s check).
  double RawBytesPerSecond() const;

 private:
  PulseSimConfig config_;
  WindField wind_;
  common::Rng rng_;
  double now_s_ = 0.0;
  double azimuth_ = 0.0;
  bool sweeping_up_ = true;
  // Per-gate oscillator phase (persistent across pulses so the pulse-pair
  // phase advance encodes velocity).
  std::vector<double> phase_;
  // MA(q) noise state: ring buffers of past innovations per channel.
  std::vector<double> ma_coeffs_;
  std::vector<std::vector<double>> noise_hist_i_;
  std::vector<std::vector<double>> noise_hist_q_;
  size_t hist_pos_ = 0;
};

}  // namespace radar
}  // namespace usp

#endif  // USP_RADAR_PULSE_SIMULATOR_H_
