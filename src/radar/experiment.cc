#include "radar/experiment.h"

#include <cmath>

#include "common/stopwatch.h"

namespace usp {
namespace radar {

WindField MakeTornadicWindField(const Table1Config& config) {
  WindField wind;
  wind.background_u_mps = 4.0;
  wind.background_v_mps = 2.0;
  // Vortices staggered through the sector (0..90 deg) at 12-30 km range so
  // each sweep crosses all of them.
  for (size_t i = 0; i < config.num_vortices; ++i) {
    const double frac =
        (static_cast<double>(i) + 0.5) / static_cast<double>(
                                             config.num_vortices);
    const double az = frac * M_PI / 2.0;
    const double range = 12000.0 + 6000.0 * static_cast<double>(i);
    Vortex v;
    v.x_m = range * std::cos(az);
    v.y_m = range * std::sin(az);
    v.core_radius_m = 450.0;
    v.max_tangential_mps = 38.0;
    wind.vortices.push_back(v);
  }
  return wind;
}

common::Result<Table1Row> RunTable1Row(const Table1Config& config,
                                       size_t averaging_size) {
  if (averaging_size < 2) {
    return common::Status::InvalidArgument(
        "averaging size must be at least 2 pulses");
  }
  const WindField wind = MakeTornadicWindField(config);
  PulseSimConfig sim_config;
  sim_config.num_gates = config.num_gates;
  sim_config.noise_stddev = config.noise_stddev;
  sim_config.seed = config.seed;
  PulseSimulator sim(sim_config, wind);

  MomentEstimator::Options mopts;
  mopts.averaging_size = averaging_size;
  MomentEstimator estimator(mopts);

  // Generate and process the full trace, splitting beams into sector scans
  // at sweep turnarounds.
  const size_t total_pulses =
      static_cast<size_t>(config.duration_s * kPulsesPerSecond);
  for (size_t p = 0; p < total_pulses; ++p) {
    USP_RETURN_NOT_OK(estimator.AddPulse(sim.NextPulse()));
  }
  const std::vector<MomentBeam>& beams = estimator.beams();
  if (beams.empty()) {
    return common::Status::FailedPrecondition(
        "no moment beams produced; averaging size exceeds the trace");
  }

  // Split into scans at azimuth direction reversals.
  std::vector<std::vector<MomentBeam>> scans;
  scans.emplace_back();
  int direction = 0;
  for (size_t i = 0; i < beams.size(); ++i) {
    if (i >= 1) {
      const double d = beams[i].azimuth_rad - beams[i - 1].azimuth_rad;
      const int nd = d > 0.0 ? 1 : (d < 0.0 ? -1 : direction);
      if (direction != 0 && nd != 0 && nd != direction) {
        scans.emplace_back();
      }
      if (nd != 0) direction = nd;
    }
    scans.back().push_back(beams[i]);
  }

  // Ground-truth vortex ground positions for scoring.
  std::vector<std::pair<double, double>> truth;
  for (const Vortex& v : wind.vortices) truth.emplace_back(v.x_m, v.y_m);

  TornadoDetector detector(config.detector);
  Table1Row row;
  row.averaging_size = averaging_size;
  row.moment_data_mb =
      static_cast<double>(beams.size() *
                          MomentEstimator::BeamBytes(config.num_gates)) /
      (1024.0 * 1024.0);

  common::Stopwatch sw;
  double reported = 0.0, false_neg = 0.0, prob_sum = 0.0;
  size_t prob_count = 0;
  size_t scored_scans = 0;
  for (const auto& scan : scans) {
    if (scan.size() < 2) continue;
    const auto detections = detector.DetectInScan(scan);
    const DetectionScore score =
        ScoreDetections(detections, sim_config.site, truth,
                        /*tolerance_m=*/2500.0);
    reported += static_cast<double>(detections.size());
    false_neg += static_cast<double>(score.false_negatives);
    for (const auto& d : detections) {
      prob_sum += d.probability;
      ++prob_count;
    }
    ++scored_scans;
  }
  row.detection_seconds = sw.ElapsedSeconds();
  if (scored_scans > 0) {
    row.avg_reported_tornados = reported / static_cast<double>(scored_scans);
    row.avg_false_negatives = false_neg / static_cast<double>(scored_scans);
  } else {
    // No usable scan at this averaging size: everything is missed.
    row.avg_reported_tornados = 0.0;
    row.avg_false_negatives = static_cast<double>(config.num_vortices);
  }
  row.avg_detection_probability =
      prob_count > 0 ? prob_sum / static_cast<double>(prob_count) : 0.0;
  return row;
}

common::Result<std::vector<Table1Row>> RunTable1Sweep(
    const Table1Config& config, const std::vector<size_t>& averaging_sizes) {
  std::vector<Table1Row> rows;
  rows.reserve(averaging_sizes.size());
  for (size_t n : averaging_sizes) {
    auto row = RunTable1Row(config, n);
    if (!row.ok()) return row.status();
    rows.push_back(row.value());
  }
  return rows;
}

}  // namespace radar
}  // namespace usp
