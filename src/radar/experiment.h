// The Table 1 experiment driver: replays a fixed span of synthetic
// tornadic pulse data through moment generation at a configurable
// averaging size, runs tornado detection per sector scan, and reports the
// paper's four columns (moment data size, detection running time, number
// of reported tornados, false negatives). Shared by the bench binary and
// the radar example.

#ifndef USP_RADAR_EXPERIMENT_H_
#define USP_RADAR_EXPERIMENT_H_

#include "common/status.h"
#include "radar/moments.h"
#include "radar/pulse_simulator.h"
#include "radar/tornado_detector.h"

namespace usp {
namespace radar {

/// One row of Table 1.
struct Table1Row {
  size_t averaging_size = 0;
  double moment_data_mb = 0.0;
  double detection_seconds = 0.0;
  double avg_reported_tornados = 0.0;
  double avg_false_negatives = 0.0;
  double avg_detection_probability = 0.0;  ///< our uncertainty extension
};

/// Experiment setup mirroring §2.2's trace: 38 seconds of raw data, 4
/// sector scans, tornadic wind field.
struct Table1Config {
  double duration_s = 38.0;
  size_t num_gates = kDefaultNumGates;
  size_t num_vortices = 4;
  double noise_stddev = 0.35;
  uint64_t seed = 509;  // May 9 homage
  TornadoDetector::Options detector;
};

/// Run the experiment at one averaging size.
common::Result<Table1Row> RunTable1Row(const Table1Config& config,
                                       size_t averaging_size);

/// Run the full sweep (the paper's {40, 60, 80, 100, 200, 500, 1000}).
common::Result<std::vector<Table1Row>> RunTable1Sweep(
    const Table1Config& config, const std::vector<size_t>& averaging_sizes);

/// Build the standard tornadic wind field used by the experiment: vortices
/// placed mid-sector at staggered ranges.
WindField MakeTornadicWindField(const Table1Config& config);

}  // namespace radar
}  // namespace usp

#endif  // USP_RADAR_EXPERIMENT_H_
