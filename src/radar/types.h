// Common radar types and physical constants for the CASA-style simulator
// (DESIGN.md substitution for the testbed's raw traces).

#ifndef USP_RADAR_TYPES_H_
#define USP_RADAR_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace usp {
namespace radar {

// Radar constants at the CASA deployment scale. The wavelength is set to
// 10 cm (vs. CASA's 3 cm X-band) so the Nyquist velocity (50 m/s) covers
// tornadic wind speeds without velocity dealiasing — dealiasing is
// orthogonal to the uncertainty pipeline under study (see DESIGN.md).
inline constexpr double kWavelengthM = 0.10;
inline constexpr double kPulsesPerSecond = 2000.0;  ///< §2.2
inline constexpr size_t kDefaultNumGates = 832;     ///< §2.2
inline constexpr double kGateSpacingM = 60.0;       ///< ~50 km max range
/// Max unambiguous (Nyquist) velocity for the PRT: lambda / (4 T).
inline constexpr double kNyquistVelocity =
    kWavelengthM * kPulsesPerSecond / 4.0;  // = 50 m/s

/// One range gate's sample within a pulse: the paper's "data item with four
/// 32-bit floating numbers" — in-phase, quadrature, received power, and a
/// signal-quality estimate.
struct GateSample {
  float i = 0.0f;
  float q = 0.0f;
  float power = 0.0f;
  float quality = 0.0f;
};

/// One transmitted pulse's worth of data: the azimuth at transmit time and
/// a sample per range gate.
struct Pulse {
  double time_s = 0.0;
  double azimuth_rad = 0.0;
  std::vector<GateSample> gates;
};

/// Moment data for one voxel (beam x gate cell): "a numeric description of
/// each unit area of space ... reflectivity, velocity, and spectral width"
/// (§2.2).
struct MomentData {
  double reflectivity_db = 0.0;
  double velocity_mps = 0.0;       ///< radial, positive away from radar
  double spectral_width_mps = 0.0;
  double velocity_variance = 0.0;  ///< uncertainty of velocity_mps (§4.4)
  size_t pulses_averaged = 0;
};

/// A radial of moment data: one beam direction, all gates.
struct MomentBeam {
  double time_s = 0.0;
  double azimuth_rad = 0.0;
  std::vector<MomentData> gates;
};

/// Position of a radar node in a shared Cartesian frame (meters).
struct RadarSite {
  double x_m = 0.0;
  double y_m = 0.0;
};

}  // namespace radar
}  // namespace usp

#endif  // USP_RADAR_TYPES_H_
