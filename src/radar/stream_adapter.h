// Bridges the radar signal chain into the box-arrow engine: each gate of a
// moment beam becomes a stream tuple whose velocity attribute carries the
// MA-CLT Gaussian from §4.4 — this is the radar T operator's output format
// (§3: "each tuple carrying velocity for each voxel"), ready for the
// relational operators in uncertain::.

#ifndef USP_RADAR_STREAM_ADAPTER_H_
#define USP_RADAR_STREAM_ADAPTER_H_

#include "common/status.h"
#include "radar/types.h"
#include "stream/batch.h"
#include "stream/operator.h"
#include "stream/schema.h"

namespace usp {
namespace radar {

/// Output schema of BeamToTuples:
/// (azimuth_rad: double, range_m: double, reflectivity_db: double,
///  velocity: distribution, spectral_width: double).
stream::SchemaPtr MomentTupleSchema();

/// Options for beam-to-tuple conversion.
struct BeamTupleOptions {
  /// Gates below this reflectivity are skipped (clear air carries no
  /// useful velocity estimate).
  double min_reflectivity_db = -1e9;
  /// Variance floor so degenerate gates still produce a valid Gaussian.
  double min_velocity_variance = 1e-9;
};

/// Convert one beam into tuples (timestamp = beam time in microseconds;
/// tuples are base tuples with their own lineage) and emit them.
common::Status BeamToTuples(const MomentBeam& beam,
                            const BeamTupleOptions& options,
                            stream::Collector* out);

/// Convert a full scan; beams are emitted in order.
common::Status ScanToTuples(const std::vector<MomentBeam>& beams,
                            const BeamTupleOptions& options,
                            stream::Collector* out);

/// Batch-native variants for the DAG runtime: one TupleBatch per beam /
/// per scan, ready for DagExecutor::PushBatch or ShardedExecutor ingest.
common::Result<stream::TupleBatch> BeamToBatch(
    const MomentBeam& beam, const BeamTupleOptions& options);
common::Result<stream::TupleBatch> ScanToBatch(
    const std::vector<MomentBeam>& beams, const BeamTupleOptions& options);

}  // namespace radar
}  // namespace usp

#endif  // USP_RADAR_STREAM_ADAPTER_H_
