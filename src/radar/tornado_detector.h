// Tornado detection on moment data (DESIGN.md substitution for CASA's
// meteorological algorithm): the classic tornado-vortex-signature
// criterion — a gate-to-gate azimuthal velocity couplet. Adjacent beams
// whose radial velocities differ by more than a shear threshold over
// consecutive gates form a detection cluster.
//
// The detector is uncertainty-aware: with per-estimate velocity variances
// (§4.4) it computes P(|shear| > threshold) for each couplet and reports
// that probability, so downstream consumers see detection quality — the
// paper's stated end goal for the CASA pipeline.

#ifndef USP_RADAR_TORNADO_DETECTOR_H_
#define USP_RADAR_TORNADO_DETECTOR_H_

#include <vector>

#include "radar/types.h"

namespace usp {
namespace radar {

/// One reported tornado signature.
struct TornadoDetection {
  double azimuth_rad = 0.0;  ///< cluster centroid
  double range_m = 0.0;
  double peak_shear_mps = 0.0;
  double probability = 1.0;  ///< P(|shear| > threshold) at the peak
  size_t cluster_cells = 0;
};

/// \brief Azimuthal-shear couplet detector over one sector scan.
class TornadoDetector {
 public:
  struct Options {
    /// Velocity span (vmax - vmin) across the couplet window that counts
    /// as a tornado-vortex signature.
    double shear_threshold_mps = 20.0;
    double min_reflectivity_db = 25.0;  ///< storm gate requirement
    size_t min_cluster_cells = 2;       ///< reject single-cell noise hits
    double min_probability = 0.5;       ///< confidence gate on P(shear)
    double max_range_m = 45000.0;
    /// Azimuthal width over which the velocity extremes of a couplet are
    /// sought (~ vortex core diameter at the ranges of interest).
    double couplet_window_rad = 0.06;
    /// Windows containing an adjacent-beam azimuth gap wider than this
    /// cannot resolve a couplet (coarse scans after aggressive averaging).
    double max_beam_gap_rad = 0.04;
  };

  explicit TornadoDetector(const Options& options) : opts_(options) {}

  /// Detect signatures in one sector scan's beams (any azimuth order; the
  /// detector sorts by azimuth internally).
  std::vector<TornadoDetection> DetectInScan(
      const std::vector<MomentBeam>& beams) const;

  const Options& options() const { return opts_; }

 private:
  Options opts_;
};

/// Match detections against ground-truth vortex positions (for the Table 1
/// false-negative column): a truth vortex at (x, y) counts as found if some
/// detection lies within `tolerance_m` of it.
struct DetectionScore {
  size_t true_positives = 0;
  size_t false_negatives = 0;
  size_t false_positives = 0;
};
DetectionScore ScoreDetections(const std::vector<TornadoDetection>& found,
                               const RadarSite& site,
                               const std::vector<std::pair<double, double>>&
                                   truth_xy,
                               double tolerance_m);

}  // namespace radar
}  // namespace usp

#endif  // USP_RADAR_TORNADO_DETECTOR_H_
