// Polar-to-Cartesian conversion and multi-radar merging (§2.2 "Merged
// data"): beams from each radar are mapped into a shared Cartesian voxel
// grid; where coverage overlaps, per-voxel velocity estimates from
// different radars are fused. With per-estimate variances available
// (§4.4), the fusion is precision-weighted — the uncertainty-aware version
// of the paper's merge join.

#ifndef USP_RADAR_GRID_H_
#define USP_RADAR_GRID_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "radar/types.h"

namespace usp {
namespace radar {

/// One fused voxel.
struct VoxelData {
  double reflectivity_db = 0.0;
  double velocity_mps = 0.0;       ///< fused radial velocity estimate
  double velocity_variance = 0.0;  ///< fused variance
  size_t contributions = 0;        ///< number of beams that hit the voxel
};

/// \brief Cartesian voxel grid accumulating moment beams from many radars.
class VoxelGrid {
 public:
  struct Extent {
    double x_min_m, x_max_m;
    double y_min_m, y_max_m;
    double cell_m;
  };

  explicit VoxelGrid(const Extent& extent);

  size_t width() const { return width_; }
  size_t height() const { return height_; }
  const Extent& extent() const { return extent_; }

  /// Rasterize a beam from `site` into the grid: each gate's moment data
  /// lands in the voxel containing its (range, azimuth) ground position,
  /// fused with whatever is already there by inverse-variance weighting
  /// (plain averaging when variances are missing/zero).
  common::Status AddBeam(const RadarSite& site, const MomentBeam& beam);

  /// Voxel accessor; (col, row) with col along x.
  const VoxelData& at(size_t col, size_t row) const {
    return cells_[row * width_ + col];
  }
  VoxelData& at(size_t col, size_t row) { return cells_[row * width_ + col]; }

  /// Voxel containing a world position, if inside the extent.
  std::optional<std::pair<size_t, size_t>> LocateWorld(double x_m,
                                                       double y_m) const;

  /// World-space center of a voxel.
  std::pair<double, double> CellCenter(size_t col, size_t row) const;

  void Clear();

 private:
  Extent extent_;
  size_t width_, height_;
  std::vector<VoxelData> cells_;
};

}  // namespace radar
}  // namespace usp

#endif  // USP_RADAR_GRID_H_
