#include "radar/grid.h"

#include <cassert>
#include <cmath>

namespace usp {
namespace radar {

VoxelGrid::VoxelGrid(const Extent& extent) : extent_(extent) {
  assert(extent_.x_max_m > extent_.x_min_m &&
         extent_.y_max_m > extent_.y_min_m && extent_.cell_m > 0.0);
  width_ = static_cast<size_t>(
               std::ceil((extent_.x_max_m - extent_.x_min_m) /
                         extent_.cell_m));
  height_ = static_cast<size_t>(
                std::ceil((extent_.y_max_m - extent_.y_min_m) /
                          extent_.cell_m));
  cells_.assign(width_ * height_, VoxelData{});
}

void VoxelGrid::Clear() { cells_.assign(width_ * height_, VoxelData{}); }

std::optional<std::pair<size_t, size_t>> VoxelGrid::LocateWorld(
    double x_m, double y_m) const {
  if (x_m < extent_.x_min_m || x_m >= extent_.x_max_m ||
      y_m < extent_.y_min_m || y_m >= extent_.y_max_m) {
    return std::nullopt;
  }
  const size_t col =
      static_cast<size_t>((x_m - extent_.x_min_m) / extent_.cell_m);
  const size_t row =
      static_cast<size_t>((y_m - extent_.y_min_m) / extent_.cell_m);
  if (col >= width_ || row >= height_) return std::nullopt;
  return std::make_pair(col, row);
}

std::pair<double, double> VoxelGrid::CellCenter(size_t col, size_t row) const {
  return {extent_.x_min_m + (static_cast<double>(col) + 0.5) * extent_.cell_m,
          extent_.y_min_m + (static_cast<double>(row) + 0.5) * extent_.cell_m};
}

common::Status VoxelGrid::AddBeam(const RadarSite& site,
                                  const MomentBeam& beam) {
  const double cos_a = std::cos(beam.azimuth_rad);
  const double sin_a = std::sin(beam.azimuth_rad);
  for (size_t g = 0; g < beam.gates.size(); ++g) {
    const double range = (static_cast<double>(g) + 0.5) * kGateSpacingM;
    const double x = site.x_m + range * cos_a;
    const double y = site.y_m + range * sin_a;
    const auto loc = LocateWorld(x, y);
    if (!loc.has_value()) continue;
    VoxelData& cell = at(loc->first, loc->second);
    const MomentData& m = beam.gates[g];
    if (cell.contributions == 0) {
      cell.reflectivity_db = m.reflectivity_db;
      cell.velocity_mps = m.velocity_mps;
      cell.velocity_variance = m.velocity_variance;
      cell.contributions = 1;
      continue;
    }
    // Precision-weighted fusion of the velocity estimates (the product of
    // two Gaussian likelihoods); reflectivity fuses by plain averaging.
    const double va = cell.velocity_variance;
    const double vb = m.velocity_variance;
    if (va > 0.0 && vb > 0.0) {
      const double wa = 1.0 / va;
      const double wb = 1.0 / vb;
      cell.velocity_mps =
          (wa * cell.velocity_mps + wb * m.velocity_mps) / (wa + wb);
      cell.velocity_variance = 1.0 / (wa + wb);
    } else {
      const double c = static_cast<double>(cell.contributions);
      cell.velocity_mps = (cell.velocity_mps * c + m.velocity_mps) / (c + 1.0);
      cell.velocity_variance = 0.0;
    }
    const double c = static_cast<double>(cell.contributions);
    cell.reflectivity_db =
        (cell.reflectivity_db * c + m.reflectivity_db) / (c + 1.0);
    ++cell.contributions;
  }
  return common::Status::OK();
}

}  // namespace radar
}  // namespace usp
