// The radar signal processor + averaging T operator (§2.2, §4.4): turns N
// consecutive pulses into one moment beam per gate via pulse-pair
// processing, and quantifies the uncertainty of the averaged velocity with
// the MA-model CLT ("we can use the Central Limit Theorem to obtain
// asymptotic results for aggregation, disregarding the precise input
// distributions, as long as the MA assumption holds").

#ifndef USP_RADAR_MOMENTS_H_
#define USP_RADAR_MOMENTS_H_

#include <deque>

#include "common/status.h"
#include "radar/types.h"
#include "stats/gaussian.h"

namespace usp {
namespace radar {

/// \brief Pulse-pair moment estimation over a block of pulses.
///
/// For each gate the lag-1 complex autocorrelation R1 of the I/Q series
/// gives velocity v = -lambda/(4 pi T) * arg(R1); power gives
/// reflectivity; the R1/R0 magnitude ratio gives spectral width.
class MomentEstimator {
 public:
  struct Options {
    /// Pulses averaged per moment output — Table 1's sweep variable.
    size_t averaging_size = 40;
    /// Identify the per-gate MA order for the velocity uncertainty (at
    /// most two scans of the block, §4.4); when false, uses the
    /// configured default order.
    bool identify_ma_order = true;
    size_t max_ma_order = 6;
    size_t default_ma_order = 3;
  };

  explicit MomentEstimator(const Options& options) : opts_(options) {}

  /// Push a pulse; emits a completed MomentBeam every `averaging_size`
  /// pulses (the beam azimuth is the block's midpoint azimuth).
  common::Status AddPulse(const Pulse& pulse);
  /// Beams completed so far (drained by the caller).
  std::vector<MomentBeam>& beams() { return beams_; }

  const Options& options() const { return opts_; }

  /// Bytes of moment data per beam (the Table 1 "Moment Data Size" unit):
  /// 4 floats per gate, matching the paper's raw item layout.
  static size_t BeamBytes(size_t num_gates) {
    return num_gates * 4 * sizeof(float);
  }

 private:
  MomentBeam ComputeBeam() const;

  Options opts_;
  std::deque<Pulse> window_;
  std::vector<MomentBeam> beams_;
};

/// Asymptotic Gaussian for the averaged velocity of one gate: extracts the
/// per-pulse instantaneous velocity series and applies the MA CLT.
/// Exposed for tests; MomentEstimator uses it internally.
common::Result<stats::Gaussian> AveragedVelocityDistribution(
    const std::vector<double>& per_pulse_velocity, size_t ma_order);

}  // namespace radar
}  // namespace usp

#endif  // USP_RADAR_MOMENTS_H_
