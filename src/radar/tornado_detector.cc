#include "radar/tornado_detector.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/math_util.h"

namespace usp {
namespace radar {

namespace {

// One above-threshold shear hit: a gate where the velocity span across an
// azimuthal window of beams exceeds the threshold.
struct ShearHit {
  double azimuth;  // midpoint of the extreme beams
  size_t gate;
  double shear;    // vmax - vmin (signed by construction >= 0)
  double probability;
};

// Monotonic deque index tracker for sliding-window max/min.
class MonotonicWindow {
 public:
  explicit MonotonicWindow(bool is_max) : is_max_(is_max) {}
  void Push(size_t idx, double value) {
    while (!dq_.empty() && (is_max_ ? dq_.back().second <= value
                                    : dq_.back().second >= value)) {
      dq_.pop_back();
    }
    dq_.emplace_back(idx, value);
  }
  void PopBefore(size_t idx) {
    while (!dq_.empty() && dq_.front().first < idx) dq_.pop_front();
  }
  bool empty() const { return dq_.empty(); }
  size_t index() const { return dq_.front().first; }
  double value() const { return dq_.front().second; }

 private:
  bool is_max_;
  std::deque<std::pair<size_t, double>> dq_;
};

}  // namespace

std::vector<TornadoDetection> TornadoDetector::DetectInScan(
    const std::vector<MomentBeam>& beams) const {
  std::vector<TornadoDetection> out;
  if (beams.size() < 2) return out;
  std::vector<const MomentBeam*> sorted;
  sorted.reserve(beams.size());
  for (const auto& b : beams) sorted.push_back(&b);
  std::sort(sorted.begin(), sorted.end(),
            [](const MomentBeam* a, const MomentBeam* b) {
              return a->azimuth_rad < b->azimuth_rad;
            });
  const size_t n = sorted.size();
  const size_t max_gate = static_cast<size_t>(
      std::min<double>(static_cast<double>(sorted.front()->gates.size()),
                       opts_.max_range_m / kGateSpacingM));

  // Beams whose spacing to the next beam exceeds the resolvable gap break
  // windows (coarse scans after aggressive averaging cannot host a
  // couplet measurement).
  std::vector<bool> gap_bad(n, false);
  for (size_t i = 0; i + 1 < n; ++i) {
    gap_bad[i] = (sorted[i + 1]->azimuth_rad - sorted[i]->azimuth_rad) >
                 opts_.max_beam_gap_rad;
  }

  std::vector<ShearHit> hits;
  // Per gate: sliding azimuth window of width couplet_window_rad; a hit is
  // the peak of each contiguous run where (vmax - vmin) >= threshold.
  for (size_t g = 0; g < max_gate; ++g) {
    MonotonicWindow maxw(true), minw(false);
    size_t lo = 0;          // window start index
    size_t bad_gaps = 0;    // count of bad gaps inside [lo, hi)
    ShearHit best{};        // peak of the current run
    bool in_run = false;
    for (size_t hi = 0; hi < n; ++hi) {
      const MomentData& cell = sorted[hi]->gates[g];
      const bool valid = cell.reflectivity_db >= opts_.min_reflectivity_db;
      if (valid) {
        maxw.Push(hi, cell.velocity_mps);
        minw.Push(hi, cell.velocity_mps);
      }
      if (hi > 0 && gap_bad[hi - 1]) ++bad_gaps;
      // Shrink the window to the configured azimuth width.
      while (lo < hi && sorted[hi]->azimuth_rad - sorted[lo]->azimuth_rad >
                            opts_.couplet_window_rad) {
        if (gap_bad[lo]) --bad_gaps;
        ++lo;
      }
      maxw.PopBefore(lo);
      minw.PopBefore(lo);
      double shear = 0.0;
      double prob = 0.0;
      if (bad_gaps == 0 && !maxw.empty() && !minw.empty() &&
          maxw.index() != minw.index()) {
        shear = maxw.value() - minw.value();
        const double var = sorted[maxw.index()]->gates[g].velocity_variance +
                           sorted[minw.index()]->gates[g].velocity_variance;
        if (shear >= opts_.shear_threshold_mps) {
          if (var > 0.0) {
            prob = 1.0 - common::StdNormalCdf(
                             (opts_.shear_threshold_mps - shear) /
                             std::sqrt(var));
          } else {
            prob = 1.0;
          }
        }
      }
      const bool over = shear >= opts_.shear_threshold_mps &&
                        prob >= opts_.min_probability;
      if (over) {
        const double az = 0.5 * (sorted[maxw.index()]->azimuth_rad +
                                 sorted[minw.index()]->azimuth_rad);
        if (!in_run || shear > best.shear) {
          best = {az, g, shear, prob};
        }
        in_run = true;
      } else if (in_run) {
        hits.push_back(best);
        in_run = false;
      }
    }
    if (in_run) hits.push_back(best);
  }
  if (hits.empty()) return out;

  // Cluster hits adjacent in (azimuth, gate): same signature across
  // neighboring gates merges into one detection.
  std::sort(hits.begin(), hits.end(), [](const ShearHit& a,
                                         const ShearHit& b) {
    return a.gate != b.gate ? a.gate < b.gate : a.azimuth < b.azimuth;
  });
  std::vector<int> cluster_of(hits.size(), -1);
  int num_clusters = 0;
  for (size_t i = 0; i < hits.size(); ++i) {
    for (size_t j = i; j-- > 0;) {
      if (hits[i].gate - hits[j].gate > 2) break;
      if (std::fabs(hits[i].azimuth - hits[j].azimuth) <=
          opts_.couplet_window_rad) {
        cluster_of[i] = cluster_of[j];
        break;
      }
    }
    if (cluster_of[i] < 0) cluster_of[i] = num_clusters++;
  }
  for (int c = 0; c < num_clusters; ++c) {
    TornadoDetection det;
    double az_sum = 0.0, range_sum = 0.0;
    size_t count = 0;
    double peak = 0.0, peak_prob = 0.0;
    for (size_t i = 0; i < hits.size(); ++i) {
      if (cluster_of[i] != c) continue;
      az_sum += hits[i].azimuth;
      range_sum += (static_cast<double>(hits[i].gate) + 0.5) * kGateSpacingM;
      if (hits[i].shear > peak) {
        peak = hits[i].shear;
        peak_prob = hits[i].probability;
      }
      ++count;
    }
    if (count < opts_.min_cluster_cells) continue;
    det.azimuth_rad = az_sum / static_cast<double>(count);
    det.range_m = range_sum / static_cast<double>(count);
    det.peak_shear_mps = peak;
    det.probability = peak_prob;
    det.cluster_cells = count;
    out.push_back(det);
  }
  // Final pass: merge detections that are fragments of one signature (the
  // clustering above is local in (pair, gate) and can split a vortex whose
  // hits straddle a gap). Two detections within ~2 core diameters merge.
  const double merge_m = 1500.0;
  for (size_t i = 0; i < out.size(); ++i) {
    for (size_t j = i + 1; j < out.size();) {
      const double xi = out[i].range_m * std::cos(out[i].azimuth_rad);
      const double yi = out[i].range_m * std::sin(out[i].azimuth_rad);
      const double xj = out[j].range_m * std::cos(out[j].azimuth_rad);
      const double yj = out[j].range_m * std::sin(out[j].azimuth_rad);
      if (std::hypot(xi - xj, yi - yj) <= merge_m) {
        const double wi = static_cast<double>(out[i].cluster_cells);
        const double wj = static_cast<double>(out[j].cluster_cells);
        out[i].azimuth_rad =
            (wi * out[i].azimuth_rad + wj * out[j].azimuth_rad) / (wi + wj);
        out[i].range_m =
            (wi * out[i].range_m + wj * out[j].range_m) / (wi + wj);
        if (std::fabs(out[j].peak_shear_mps) >
            std::fabs(out[i].peak_shear_mps)) {
          out[i].peak_shear_mps = out[j].peak_shear_mps;
          out[i].probability = out[j].probability;
        }
        out[i].cluster_cells += out[j].cluster_cells;
        out.erase(out.begin() + static_cast<ptrdiff_t>(j));
      } else {
        ++j;
      }
    }
  }
  return out;
}

DetectionScore ScoreDetections(
    const std::vector<TornadoDetection>& found, const RadarSite& site,
    const std::vector<std::pair<double, double>>& truth_xy,
    double tolerance_m) {
  DetectionScore score;
  std::vector<bool> used(found.size(), false);
  for (const auto& [tx, ty] : truth_xy) {
    bool matched = false;
    for (size_t i = 0; i < found.size(); ++i) {
      if (used[i]) continue;
      const double fx =
          site.x_m + found[i].range_m * std::cos(found[i].azimuth_rad);
      const double fy =
          site.y_m + found[i].range_m * std::sin(found[i].azimuth_rad);
      const double d = std::hypot(fx - tx, fy - ty);
      if (d <= tolerance_m) {
        used[i] = true;
        matched = true;
        break;
      }
    }
    if (matched) {
      ++score.true_positives;
    } else {
      ++score.false_negatives;
    }
  }
  score.false_positives = found.size() -
                          static_cast<size_t>(std::count(used.begin(),
                                                         used.end(), true));
  return score;
}

}  // namespace radar
}  // namespace usp
