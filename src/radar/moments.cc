#include "radar/moments.h"

#include <cmath>
#include <complex>

#include "stats/timeseries.h"

namespace usp {
namespace radar {

common::Result<stats::Gaussian> AveragedVelocityDistribution(
    const std::vector<double>& per_pulse_velocity, size_t ma_order) {
  return stats::CltMeanOfMaSeries(per_pulse_velocity, ma_order);
}

common::Status MomentEstimator::AddPulse(const Pulse& pulse) {
  window_.push_back(pulse);
  if (window_.size() < opts_.averaging_size) return common::Status::OK();
  beams_.push_back(ComputeBeam());
  window_.clear();
  return common::Status::OK();
}

MomentBeam MomentEstimator::ComputeBeam() const {
  const size_t n = window_.size();
  const size_t gates = window_.front().gates.size();
  MomentBeam beam;
  beam.time_s = window_.back().time_s;
  // Midpoint azimuth of the block: averaging across a rotating antenna
  // smears the beam over the swept arc — the resolution loss Table 1
  // quantifies.
  beam.azimuth_rad = 0.5 * (window_.front().azimuth_rad +
                            window_.back().azimuth_rad);
  beam.gates.resize(gates);

  const double prt = 1.0 / kPulsesPerSecond;
  std::vector<double> pp_velocity(n - 1);
  for (size_t g = 0; g < gates; ++g) {
    // Lag-0 power and lag-1 complex autocorrelation across the block.
    double p0 = 0.0;
    std::complex<double> r1(0.0, 0.0);
    for (size_t t = 0; t < n; ++t) {
      const GateSample& s = window_[t].gates[g];
      p0 += static_cast<double>(s.i) * s.i + static_cast<double>(s.q) * s.q;
      if (t + 1 < n) {
        const GateSample& s1 = window_[t + 1].gates[g];
        const std::complex<double> z0(s.i, s.q);
        const std::complex<double> z1(s1.i, s1.q);
        r1 += std::conj(z0) * z1;
        // Instantaneous pulse-pair velocity for the uncertainty series.
        const std::complex<double> pair = std::conj(z0) * z1;
        pp_velocity[t] =
            kWavelengthM / (4.0 * M_PI * prt) * std::arg(pair);
      }
    }
    p0 /= static_cast<double>(n);
    r1 /= static_cast<double>(n - 1);

    MomentData& m = beam.gates[g];
    m.pulses_averaged = n;
    m.reflectivity_db = 10.0 * std::log10(std::max(p0, 1e-12)) + 20.0;
    m.velocity_mps = kWavelengthM / (4.0 * M_PI * prt) * std::arg(r1);
    // Spectral width from the R1/R0 ratio (|R1| <= R0 always).
    const double ratio = std::abs(r1) / std::max(p0, 1e-12);
    const double clamped = std::min(std::max(ratio, 1e-6), 1.0);
    m.spectral_width_mps = kWavelengthM / (2.0 * M_PI * prt * 1.414213562) *
                           std::sqrt(std::max(0.0, std::log(1.0 / clamped)));
    // Velocity uncertainty via the MA CLT over the per-pulse series.
    size_t q = opts_.default_ma_order;
    if (opts_.identify_ma_order && pp_velocity.size() > 8) {
      q = stats::IdentifyMaOrder(pp_velocity, opts_.max_ma_order);
    }
    auto clt = stats::CltMeanOfMaSeries(pp_velocity, q);
    if (clt.ok()) {
      m.velocity_variance = clt.value().Variance();
    } else {
      // Degenerate block (e.g. constant series): fall back to the sample
      // variance of the pair velocities over n.
      double mean = 0.0;
      for (double v : pp_velocity) mean += v;
      mean /= static_cast<double>(pp_velocity.size());
      double var = 0.0;
      for (double v : pp_velocity) var += (v - mean) * (v - mean);
      var /= static_cast<double>(pp_velocity.size());
      m.velocity_variance = var / static_cast<double>(pp_velocity.size());
    }
  }
  return beam;
}

}  // namespace radar
}  // namespace usp
