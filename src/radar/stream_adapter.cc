#include "radar/stream_adapter.h"

#include <cmath>

#include "stats/gaussian.h"

namespace usp {
namespace radar {

stream::SchemaPtr MomentTupleSchema() {
  return std::make_shared<stream::Schema>(std::vector<stream::Field>{
      {"azimuth_rad", stream::ValueKind::kDouble},
      {"range_m", stream::ValueKind::kDouble},
      {"reflectivity_db", stream::ValueKind::kDouble},
      {"velocity", stream::ValueKind::kDistribution},
      {"spectral_width", stream::ValueKind::kDouble},
  });
}

common::Status BeamToTuples(const MomentBeam& beam,
                            const BeamTupleOptions& options,
                            stream::Collector* out) {
  if (out == nullptr) {
    return common::Status::InvalidArgument("BeamToTuples: null collector");
  }
  const int64_t ts_us = static_cast<int64_t>(beam.time_s * 1e6);
  for (size_t g = 0; g < beam.gates.size(); ++g) {
    const MomentData& m = beam.gates[g];
    if (m.reflectivity_db < options.min_reflectivity_db) continue;
    const double sd = std::sqrt(
        std::max(m.velocity_variance, options.min_velocity_variance));
    auto vel = stats::Gaussian::Make(m.velocity_mps, sd);
    if (!vel.ok()) return vel.status();
    stream::Tuple tuple(
        ts_us,
        {stream::Value(beam.azimuth_rad),
         stream::Value((static_cast<double>(g) + 0.5) * kGateSpacingM),
         stream::Value(m.reflectivity_db),
         stream::Value(stats::DistributionPtr(
             std::make_shared<stats::Gaussian>(vel.MoveValueUnsafe()))),
         stream::Value(m.spectral_width_mps)});
    tuple.InitBaseLineage();
    out->Emit(std::move(tuple));
  }
  return common::Status::OK();
}

common::Status ScanToTuples(const std::vector<MomentBeam>& beams,
                            const BeamTupleOptions& options,
                            stream::Collector* out) {
  for (const MomentBeam& beam : beams) {
    USP_RETURN_NOT_OK(BeamToTuples(beam, options, out));
  }
  return common::Status::OK();
}

common::Result<stream::TupleBatch> BeamToBatch(
    const MomentBeam& beam, const BeamTupleOptions& options) {
  stream::TupleBatch batch;
  batch.Reserve(beam.gates.size());
  stream::BatchCollector collector(&batch);
  USP_RETURN_NOT_OK(BeamToTuples(beam, options, &collector));
  return batch;
}

common::Result<stream::TupleBatch> ScanToBatch(
    const std::vector<MomentBeam>& beams, const BeamTupleOptions& options) {
  stream::TupleBatch batch;
  stream::BatchCollector collector(&batch);
  USP_RETURN_NOT_OK(ScanToTuples(beams, options, &collector));
  return batch;
}

}  // namespace radar
}  // namespace usp
