// Quickstart: the core abstractions in ~5 minutes.
//
//  1. Build tuple-level distributions (the pdf every uncertain attribute
//     carries).
//  2. Declare a windowed SUM as a logical query plan and let the planner
//     compile it, once per aggregation strategy from the paper's Table 2.
//  3. Register standing subscriptions (per-subscriber key + threshold)
//     and serve them all from ONE multiplexed plan.
//  4. Read out full result pdfs, confidence regions, and predicate
//     probabilities.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "query/planner.h"
#include "query/query.h"
#include "query/subscription.h"
#include "stats/gaussian.h"
#include "stats/gaussian_mixture.h"
#include "uncertain/sum_strategies.h"

using usp::stats::DistributionPtr;
using usp::stream::Tuple;
using usp::stream::Value;

int main() {
  printf("== uncertain stream processing: quickstart ==\n\n");

  // --- 1. tuple-level distributions -------------------------------------
  // A sensor reports a weight of ~50 lb with +-2 lb of calibration noise:
  DistributionPtr w1 = std::make_shared<usp::stats::Gaussian>(50.0, 2.0);
  // Another reading is ambiguous between two racks (bimodal):
  DistributionPtr w2 = std::make_shared<usp::stats::GaussianMixture>(
      usp::stats::GaussianMixture::Make({{0.7, 80.0, 3.0}, {0.3, 95.0, 3.0}})
          .MoveValueUnsafe());
  printf("w1 = %s\n", w1->ToString().c_str());
  printf("w2 = %s (mean %.1f)\n\n", w2->ToString().c_str(), w2->Mean());

  // --- 2. windowed SUM under uncertainty --------------------------------
  //
  // Building a query, step by step:
  //
  //   a. `Query::From("readings", 2)` names the external source and
  //      declares its tuple arity (zone:string, weight:pdf) — the arity is
  //      optional, but with it the compiler of the plan (the planner) can
  //      reject bad attribute references before anything runs.
  //   b. `.Window(...)` opens a windowed aggregate stage. Tumbling(5 s)
  //      is Q1's `[Range 5 seconds]`; Sliding(size, slide) declares
  //      overlap, and the PLANNER — not you — then picks the
  //      pane-incremental operator automatically.
  //   c. `.GroupBy(0)` groups by attribute 0 (the zone). Declaring the
  //      key by attribute also lets the planner derive the ingest
  //      partition key if you later compile with num_shards > 1.
  //   d. `.Sum("total", 1, kind)` appends an aggregate column: SUM over
  //      attribute 1 using one of Table 2's algorithms. (`.Having(...)`
  //      would filter emitted groups, see the fire-code example.)
  //   e. `.Sink("totals")` terminates the plan; `.Compile()` validates it
  //      and materialises the physical runtime. The planner auto-tunes
  //      the physical knobs by default: the shard count comes from the
  //      machine's cores (falling back to one shard when no partition
  //      key is derivable), each source gets its own ingest lane on
  //      sharded plans, and the ingest batch target is re-derived from
  //      observed operator cost while the query runs. Every decision is
  //      visible in `summary()` (printed below for the first plan).
  //
  //      When to override in PlannerOptions: pin `num_shards` when you
  //      need machine-independent results/benchmarks (num_shards = 1
  //      keeps the exact single-threaded emission order) or when the
  //      query shares the host with other work; pin `target_batch_size`
  //      when you need a hard per-batch latency bound instead of the
  //      tuner's throughput-oriented choice (0 disables re-batching
  //      entirely). Explicit values always win over auto-tuning.
  //
  //      Watermark knobs (event-time progress): every source
  //      periodically announces "no future tuple below T"; the runtime
  //      forwards that signal along the plan's edges (fan-ins take the
  //      min of their inputs), closes windows by it, and expires join
  //      buffers by it — so a SILENT sensor no longer stalls windows or
  //      grows the peer side of a join (push progress explicitly with
  //      `CompiledQuery::PushWatermark` during an outage).
  //      * `watermark_period_us`: how often each source emits one.
  //        Default kAutoWatermarkPeriod derives a quarter of the
  //        smallest window slide / join range from the plan; 0 turns
  //        generation off (arrival-driven closure only).
  //      * `watermark_lateness_us`: slack subtracted from the source's
  //        max ingested timestamp. It only weakens the PROMISE (delaying
  //        watermark-gated closure/expiry by that much event time); it
  //        does not let operators on the arrival-driven path accept
  //        out-of-order input — per-source timestamp order remains the
  //        ingest contract. Leave at 0 (exact).
  //      The decisions appear in summary() with every other knob, and
  //      per-operator progress/memory is observable as `low_watermark` /
  //      `buffered_bytes` in MetricsSnapshot().
  //
  //      Hardware-saturation knobs (defaults are right for nearly
  //      everyone):
  //      * The CF/CDF math dispatches to SIMD kernels picked by cpuid at
  //        startup (AVX2 when available, scalar otherwise). Every tier
  //        is bitwise-identical, so this is invisible except in speed;
  //        set env `USP_SIMD=scalar` to force the fallback.
  //      * `share_cf_grids` (on): plans with a CF-inversion SUM/AVG
  //        cache evaluated CF grids by distribution-parameter signature,
  //        so groups over identically-parameterised sensor models
  //        evaluate each grid once. Bitwise-neutral; hit/miss counters
  //        appear as `grid_cache_hits/misses` in MetricsSnapshot() and
  //        the decision in summary().
  //      * `pin_threads` (kAuto): on sharded plans on machines with
  //        >= 4 hardware threads, shard workers and ingest lanes pin to
  //        distinct cores and ring buffers are first-touched core-local.
  //        kOff if the query shares the host with other work; kOn to
  //        force pinning on smaller machines.
  //
  // Tuples: (zone, weight). One 5-second tumbling window, grouped by zone.
  const auto make_tuple = [](int64_t ts, const char* zone,
                             DistributionPtr w) {
    Tuple t(ts, {Value(std::string(zone)), Value(std::move(w))});
    t.InitBaseLineage();
    return t;
  };

  bool printed_summary = false;
  for (const auto kind :
       {usp::uncertain::SumStrategyKind::kCfApprox,
        usp::uncertain::SumStrategyKind::kCfInversion,
        usp::uncertain::SumStrategyKind::kHistogram,
        usp::uncertain::SumStrategyKind::kClt}) {
    auto plan = usp::query::Query::From("readings", 2)
                    .Window(usp::stream::WindowSpec::Tumbling(5'000'000))
                    .GroupBy(0)
                    .Sum("total", 1, kind)
                    .Sink("totals");
    auto compiled_or = plan.Compile();
    if (!compiled_or.ok()) {
      fprintf(stderr, "compile failed: %s\n",
              compiled_or.status().ToString().c_str());
      return 1;
    }
    auto compiled = compiled_or.MoveValueUnsafe();
    if (!printed_summary) {
      printf("planner decisions: %s\n\n",
             compiled->summary().ToString().c_str());
      printed_summary = true;
    }

    usp::stream::TupleBatch batch;
    batch.Append(make_tuple(1'000'000, "A", w1));
    batch.Append(make_tuple(2'000'000, "A", w2));
    batch.Append(make_tuple(
        3'000'000, "B", std::make_shared<usp::stats::Gaussian>(120.0, 5.0)));
    (void)compiled->PushBatch(compiled->source("readings"), std::move(batch));
    (void)compiled->Finish();

    printf("strategy %-14s ->",
           usp::uncertain::SumStrategyKindName(kind));
    for (const Tuple& t : compiled->Result("totals")) {
      const auto& dist = *t.value(1).AsDistribution();
      printf("  zone %s: mean %.1f sd %.2f |", t.value(0).AsString().c_str(),
             dist.Mean(), dist.Stddev());
    }
    printf("\n");
  }

  // --- 3. standing subscriptions (one plan, many subscribers) -----------
  //
  // When MANY consumers want the same query shape with personal
  // constants — different group keys, thresholds, confidences — do NOT
  // compile one plan each. Register them in a `SubscriptionSet` and use
  // `CompileMultiplexed`: one source scan, one window buffer, one
  // aggregate per group, and a predicate index dispatching each emitted
  // group row to exactly the subscriptions it satisfies. Each sink row
  // is tagged with the matching subscription id; `OnMatch` callbacks are
  // the push-style alert channel. See examples/fridge_monitor.cpp for
  // the full walkthrough and bench_multiplex for the scaling numbers
  // (one shared plan holds 1M registered subscriptions).
  {
    auto subs = std::make_shared<usp::query::SubscriptionSet>();
    // Zone A's owner: "P(total > 120 lb) >= 0.9" over MY zone only.
    subs->Subscribe(
        usp::query::Subscription::KeyEquals(Value(std::string("A")))
            .Where(/*agg_column=*/0, /*threshold=*/120.0,
                   /*min_confidence=*/0.9));
    // A dashboard that records every zone's window, unconditionally.
    subs->Subscribe(usp::query::Subscription::AllGroups());
    auto mq_or = usp::query::Query::From("readings", 2)
                     .Window(usp::stream::WindowSpec::Tumbling(5'000'000))
                     .GroupBy(0)
                     .Sum("total", 1, usp::uncertain::SumStrategyKind::kClt)
                     .Sink("alerts")
                     .CompileMultiplexed(subs);
    if (!mq_or.ok()) {
      fprintf(stderr, "multiplexed compile failed: %s\n",
              mq_or.status().ToString().c_str());
      return 1;
    }
    auto mq = mq_or.MoveValueUnsafe();
    usp::stream::TupleBatch batch;
    batch.Append(make_tuple(1'000'000, "A", w1));
    batch.Append(make_tuple(2'000'000, "A", w2));
    batch.Append(make_tuple(
        3'000'000, "B", std::make_shared<usp::stats::Gaussian>(120.0, 5.0)));
    (void)mq->PushBatch(mq->source("readings"), std::move(batch));
    (void)mq->Finish();
    printf("\nmultiplexed: %s\n", mq->summary().ToString().c_str());
    for (const Tuple& t : mq->Result("alerts")) {
      printf("  zone %s total %.1f -> subscription %lld\n",
             t.value(0).AsString().c_str(),
             t.value(1).AsDistribution()->Mean(),
             static_cast<long long>(t.value(t.num_values() - 1).AsInt()));
    }
  }

  // --- 4. result quality ------------------------------------------------
  usp::uncertain::CfApproxSum approx;
  auto total = approx.SumOf({w1.get(), w2.get()});
  if (!total.ok()) {
    fprintf(stderr, "aggregation failed: %s\n",
            total.status().ToString().c_str());
    return 1;
  }
  const auto& dist = *total.value();
  const auto region = dist.ConfidenceRegion(0.9);
  printf("\nzone A total: %s\n", dist.ToString().c_str());
  printf("90%% confidence region: [%.1f, %.1f] lb\n", region.lo, region.hi);
  printf("P(total > 140 lb) = %.3f\n", 1.0 - dist.Cdf(140.0));
  printf("P(total > 120 lb) = %.3f\n", 1.0 - dist.Cdf(120.0));
  return 0;
}
