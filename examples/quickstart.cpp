// Quickstart: the core abstractions in ~5 minutes.
//
//  1. Build tuple-level distributions (the pdf every uncertain attribute
//     carries).
//  2. Push uncertain tuples through a windowed SUM with each aggregation
//     strategy from the paper's Table 2.
//  3. Read out full result pdfs, confidence regions, and predicate
//     probabilities.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "stats/gaussian.h"
#include "stats/gaussian_mixture.h"
#include "stream/group_by.h"
#include "stream/pipeline.h"
#include "uncertain/aggregates.h"
#include "uncertain/sum_strategies.h"

using usp::stats::DistributionPtr;
using usp::stream::Tuple;
using usp::stream::Value;

int main() {
  printf("== uncertain stream processing: quickstart ==\n\n");

  // --- 1. tuple-level distributions -------------------------------------
  // A sensor reports a weight of ~50 lb with +-2 lb of calibration noise:
  DistributionPtr w1 = std::make_shared<usp::stats::Gaussian>(50.0, 2.0);
  // Another reading is ambiguous between two racks (bimodal):
  DistributionPtr w2 = std::make_shared<usp::stats::GaussianMixture>(
      usp::stats::GaussianMixture::Make({{0.7, 80.0, 3.0}, {0.3, 95.0, 3.0}})
          .MoveValueUnsafe());
  printf("w1 = %s\n", w1->ToString().c_str());
  printf("w2 = %s (mean %.1f)\n\n", w2->ToString().c_str(), w2->Mean());

  // --- 2. windowed SUM under uncertainty --------------------------------
  // Tuples: (zone, weight). One 5-second tumbling window, grouped by zone.
  // The plan runs as a Pipeline — a path-shaped graph on the batched DAG
  // executor — so the whole tuple vector flows through in one batch.
  const auto make_tuple = [](int64_t ts, const char* zone,
                             DistributionPtr w) {
    Tuple t(ts, {Value(std::string(zone)), Value(std::move(w))});
    t.InitBaseLineage();
    return t;
  };

  for (const auto kind :
       {usp::uncertain::SumStrategyKind::kCfApprox,
        usp::uncertain::SumStrategyKind::kCfInversion,
        usp::uncertain::SumStrategyKind::kHistogram,
        usp::uncertain::SumStrategyKind::kClt}) {
    auto strategy = usp::uncertain::MakeSumStrategy(kind);
    usp::stream::Pipeline plan;
    plan.Add(std::make_unique<usp::stream::GroupByAggregateOperator>(
        "sum_by_zone", usp::stream::WindowSpec::Tumbling(5'000'000),
        [](const Tuple& t) { return t.value(0).AsString(); },
        std::vector<usp::stream::AggregateSpec>{
            usp::uncertain::MakeSumAggregate("total", 1, strategy.get())}));
    usp::stream::VectorCollector out;
    (void)plan.Run(
        {make_tuple(1'000'000, "A", w1), make_tuple(2'000'000, "A", w2),
         make_tuple(3'000'000, "B",
                    std::make_shared<usp::stats::Gaussian>(120.0, 5.0))},
        &out);

    printf("strategy %-18s ->", strategy->name().c_str());
    for (const Tuple& t : out.tuples()) {
      const auto& dist = *t.value(1).AsDistribution();
      printf("  zone %s: mean %.1f sd %.2f |", t.value(0).AsString().c_str(),
             dist.Mean(), dist.Stddev());
    }
    printf("\n");
  }

  // --- 3. result quality ------------------------------------------------
  usp::uncertain::CfApproxSum approx;
  auto total = approx.SumOf({w1.get(), w2.get()});
  if (!total.ok()) {
    fprintf(stderr, "aggregation failed: %s\n",
            total.status().ToString().c_str());
    return 1;
  }
  const auto& dist = *total.value();
  const auto region = dist.ConfidenceRegion(0.9);
  printf("\nzone A total: %s\n", dist.ToString().c_str());
  printf("90%% confidence region: [%.1f, %.1f] lb\n", region.lo, region.hi);
  printf("P(total > 140 lb) = %.3f\n", 1.0 - dist.Cdf(140.0));
  printf("P(total > 120 lb) = %.3f\n", 1.0 - dist.Cdf(120.0));
  return 0;
}
