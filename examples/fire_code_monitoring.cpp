// Paper query Q1 end to end (§2.1): fire-code monitoring over an RFID
// warehouse.
//
//   Select Rstream(R2.area, sum(R2.weight))
//   From (Select Rstream(*, area(R.(x,y,z)) As area,
//                        weight(R.tag_id) As weight)
//         From RFIDStream R [Now]) R2 [Range 5 seconds]
//   Group By R2.area
//   Having sum(R2.weight) > 200 pounds
//
// The RFIDStream comes from the full T-operator pipeline: warehouse
// simulator -> particle filter -> KL conversion to per-axis Gaussians.
// Because locations are uncertain, area membership is probabilistic; this
// example resolves areas by expected location and reports the violation
// probability P(sum > 200) per emitted group.
//
// The plan runs on the sharded DAG executor: tuples are hash-partitioned
// by area cell, each shard runs a private map -> group-by plan on its own
// worker thread, and the per-area sums are exact because one area's
// tuples always land on one shard.
//
// Build & run:  ./build/examples/fire_code_monitoring

#include <cstdio>
#include <string>
#include <utility>

#include "rfid/model.h"
#include "rfid/transform_operator.h"
#include "stream/basic_operators.h"
#include "stream/group_by.h"
#include "stream/sharded_executor.h"
#include "uncertain/aggregates.h"
#include "uncertain/sum_strategies.h"

using usp::stream::Tuple;
using usp::stream::Value;

namespace {

// 10 ft grid cell of a location tuple's expected position. The shard key
// hashes the same cell numerically (no string formatting on the ingest
// hot path); the GROUP BY key is the cell's display name. Same cell =>
// same shard AND same group, so grouping stays shard-local.
std::pair<int, int> AreaCellOf(const Tuple& t) {
  return {int(t.value(1).AsDistribution()->Mean() / 10.0),
          int(t.value(2).AsDistribution()->Mean() / 10.0)};
}

std::string AreaOf(const Tuple& t) {
  const auto [cx, cy] = AreaCellOf(t);
  return "area_" + std::to_string(cx) + "_" + std::to_string(cy);
}

}  // namespace

int main() {
  // --- world + T operator ------------------------------------------------
  usp::rfid::WarehouseConfig config;
  config.width_ft = 80.0;
  config.height_ft = 80.0;
  config.shelf_rows = 8;
  config.shelf_cols = 8;
  config.num_objects = 60;
  config.seed = 509;
  usp::rfid::WarehouseSimulator sim(config);
  usp::rfid::RfidTransformOperator::Options t_opts;
  t_opts.filter.particles_per_object = 64;
  usp::rfid::RfidTransformOperator t_op(config.num_objects,
                                        sim.shelf_positions(),
                                        config.sensing, t_opts);

  // Object weights by tag id: a handful of heavy pallets, the rest light.
  std::vector<double> weight_by_tag(config.num_objects);
  for (size_t i = 0; i < weight_by_tag.size(); ++i) {
    weight_by_tag[i] = (i % 7 == 0) ? 120.0 : 25.0;
  }

  // --- Q1 as a sharded keyed plan ----------------------------------------
  usp::stream::ShardedExecutor::Options opts;
  opts.num_shards = 4;
  // One strategy instance per shard: aggregate state never crosses threads.
  std::vector<std::unique_ptr<usp::uncertain::CfApproxSum>> strategies(
      opts.num_shards);
  usp::stream::ExecGraph::NodeId source = 0, group = 0, sink = 0;
  auto exec_or = usp::stream::ShardedExecutor::Create(
      opts,
      [](const Tuple& t) {
        const auto [cx, cy] = AreaCellOf(t);
        return std::hash<int64_t>{}((static_cast<int64_t>(cx) << 32) ^
                                    static_cast<uint32_t>(cy));
      },
      [&](usp::stream::ExecGraph* g, const usp::stream::ShardContext& ctx) {
        strategies[ctx.shard_index] =
            std::make_unique<usp::uncertain::CfApproxSum>();
        usp::uncertain::CfApproxSum* sum_strategy =
            strategies[ctx.shard_index].get();
        source = g->AddSource("rfid_stream");
        // Inner select: annotate area (10 ft grid cells) and weight.
        const auto annotate = g->AddOperator(
            source,
            std::make_unique<usp::stream::MapOperator>(
                "annotate_area_weight",
                [&weight_by_tag](const Tuple& t)
                    -> usp::common::Result<Tuple> {
                  Tuple out = t;
                  out.AppendValue(Value(AreaOf(t)));
                  out.AppendValue(
                      Value(weight_by_tag[size_t(t.value(0).AsInt())]));
                  return out;
                }));
        // Outer select: 5 s window, group by area, SUM(weight),
        // HAVING > 200 lb with 50% confidence.
        group = g->AddOperator(
            annotate,
            std::make_unique<usp::stream::GroupByAggregateOperator>(
                "q1_group_sum", usp::stream::WindowSpec::Tumbling(5'000'000),
                [](const Tuple& t) { return t.value(3).AsString(); },
                std::vector<usp::stream::AggregateSpec>{
                    usp::uncertain::MakeSumAggregate("total_weight", 4,
                                                     sum_strategy)},
                usp::uncertain::MakeHavingProbGreater(1, 200.0, 0.5)));
        sink = g->AddSink(group, "alerts");
        return usp::common::Status::OK();
      });
  if (!exec_or.ok()) {
    fprintf(stderr, "plan failed: %s\n",
            exec_or.status().ToString().c_str());
    return 1;
  }
  auto exec = exec_or.MoveValueUnsafe();

  // --- run 2 simulated minutes -------------------------------------------
  printf("== Q1: fire-code monitoring (areas over 200 lb, %zu shards) ==\n\n",
         exec->num_shards());
  for (int scan = 0; scan < 240; ++scan) {
    auto locations = t_op.ProcessReadingBatch(sim.Step());
    if (!locations.ok()) {
      fprintf(stderr, "T operator failed: %s\n",
              locations.status().ToString().c_str());
      return 1;
    }
    if (auto st = exec->PushBatch(source, locations.MoveValueUnsafe());
        !st.ok()) {
      fprintf(stderr, "plan failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (auto st = exec->Finish(); !st.ok()) {
    fprintf(stderr, "plan failed: %s\n", st.ToString().c_str());
    return 1;
  }

  const auto& alerts = exec->sink_output(sink);
  printf("%-12s %-12s %-14s %s\n", "time(s)", "area", "E[weight](lb)",
         "P(weight > 200)");
  for (const Tuple& alert : alerts) {
    const Value& total = alert.value(1);
    printf("%-12.1f %-12s %-14.1f %.3f\n",
           static_cast<double>(alert.timestamp()) / 1e6,
           alert.value(0).AsString().c_str(), total.ExpectedValue(),
           usp::uncertain::ProbGreaterThan(total, 200.0));
  }
  uint64_t group_in = 0;
  for (const auto& m : exec->MetricsSnapshot()) {
    if (m.name == "q1_group_sum") group_in = m.metrics.tuples_in;
  }
  printf("\n%zu violation alerts from %llu location tuples\n", alerts.size(),
         static_cast<unsigned long long>(group_in));
  return 0;
}
