// Paper query Q1 end to end (§2.1): fire-code monitoring over an RFID
// warehouse.
//
//   Select Rstream(R2.area, sum(R2.weight))
//   From (Select Rstream(*, area(R.(x,y,z)) As area,
//                        weight(R.tag_id) As weight)
//         From RFIDStream R [Now]) R2 [Range 5 seconds]
//   Group By R2.area
//   Having sum(R2.weight) > 200 pounds
//
// The RFIDStream comes from the full T-operator pipeline: warehouse
// simulator -> particle filter -> KL conversion to per-axis Gaussians.
// Because locations are uncertain, area membership is probabilistic; this
// example resolves areas by expected location and reports the violation
// probability P(sum > 200) per emitted group.
//
// The query is DECLARED, not wired: the logical plan below says
// map -> window -> group-by -> sum -> having, and `Compile({num_shards=4})`
// makes every physical choice — it builds the per-shard graphs, keeps the
// exact per-window SUM kernel (tumbling window), and derives the ingest
// partition key from the group-by key by replaying the annotate map, so
// one area's tuples always land on one shard and the per-area sums are
// exact with zero cross-shard coordination.
//
// Build & run:  ./build/examples/fire_code_monitoring

#include <cstdio>
#include <string>

#include "query/planner.h"
#include "query/query.h"
#include "rfid/model.h"
#include "rfid/transform_operator.h"
#include "uncertain/aggregates.h"

using usp::stream::Tuple;
using usp::stream::Value;

namespace {

// 10 ft grid cell display name of a location tuple's expected position:
// the GROUP BY key (and therefore, derived by the planner, the shard key).
std::string AreaOf(const Tuple& t) {
  const int cx = int(t.value(1).AsDistribution()->Mean() / 10.0);
  const int cy = int(t.value(2).AsDistribution()->Mean() / 10.0);
  return "area_" + std::to_string(cx) + "_" + std::to_string(cy);
}

}  // namespace

int main() {
  // --- world + T operator ------------------------------------------------
  usp::rfid::WarehouseConfig config;
  config.width_ft = 80.0;
  config.height_ft = 80.0;
  config.shelf_rows = 8;
  config.shelf_cols = 8;
  config.num_objects = 60;
  config.seed = 509;
  usp::rfid::WarehouseSimulator sim(config);
  usp::rfid::RfidTransformOperator::Options t_opts;
  t_opts.filter.particles_per_object = 64;
  usp::rfid::RfidTransformOperator t_op(config.num_objects,
                                        sim.shelf_positions(),
                                        config.sensing, t_opts);

  // Object weights by tag id: a handful of heavy pallets, the rest light.
  std::vector<double> weight_by_tag(config.num_objects);
  for (size_t i = 0; i < weight_by_tag.size(); ++i) {
    weight_by_tag[i] = (i % 7 == 0) ? 120.0 : 25.0;
  }

  // --- Q1, declared ------------------------------------------------------
  // Inner select: annotate area + weight (tuple becomes
  // (tag, x, y, area, weight)). Outer select: 5 s window, group by area,
  // SUM(weight) via the CF-approximation strategy, HAVING > 200 lb with
  // 50% confidence.
  auto q1 =
      usp::query::Query::From("rfid_stream", 3)
          .Map("annotate_area_weight",
               [&weight_by_tag](const Tuple& t)
                   -> usp::common::Result<Tuple> {
                 Tuple out = t;
                 out.AppendValue(Value(AreaOf(t)));
                 out.AppendValue(
                     Value(weight_by_tag[size_t(t.value(0).AsInt())]));
                 return out;
               },
               5)
          .Window(usp::stream::WindowSpec::Tumbling(5'000'000))
          .GroupBy(3)
          .Sum("total_weight", 4, usp::uncertain::SumStrategyKind::kCfApprox)
          .Having(usp::uncertain::MakeHavingProbGreater(1, 200.0, 0.5))
          .Sink("alerts");

  // num_shards is pinned to 4 so the demo behaves identically on any
  // machine; leaving it at the default (kAutoShards) lets the planner
  // size the executor from the machine's cores instead. target_batch_size
  // stays at its default, kAutoBatchSize: the executor's feedback tuner
  // re-derives the ingest batch target from the observed per-tuple
  // operator cost while the query runs (see the line printed after the
  // run). Override either only when you know better than the planner —
  // e.g. pinning shards for reproducible benchmarks, or pinning the batch
  // target for a hard per-batch latency bound.
  usp::query::PlannerOptions popts;
  popts.num_shards = 4;
  auto exec_or = q1.Compile(popts);
  if (!exec_or.ok()) {
    fprintf(stderr, "compile failed: %s\n",
            exec_or.status().ToString().c_str());
    return 1;
  }
  auto exec = exec_or.MoveValueUnsafe();
  const auto source = exec->source("rfid_stream");

  // --- run 2 simulated minutes -------------------------------------------
  printf("== Q1: fire-code monitoring (areas over 200 lb) ==\n");
  printf("plan: %s\n\n", exec->summary().ToString().c_str());
  for (int scan = 0; scan < 240; ++scan) {
    auto locations = t_op.ProcessReadingBatch(sim.Step());
    if (!locations.ok()) {
      fprintf(stderr, "T operator failed: %s\n",
              locations.status().ToString().c_str());
      return 1;
    }
    if (auto st = exec->PushBatch(source, locations.MoveValueUnsafe());
        !st.ok()) {
      fprintf(stderr, "plan failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (auto st = exec->Finish(); !st.ok()) {
    fprintf(stderr, "plan failed: %s\n", st.ToString().c_str());
    return 1;
  }

  const auto& alerts = exec->Result("alerts");
  printf("%-12s %-12s %-14s %s\n", "time(s)", "area", "E[weight](lb)",
         "P(weight > 200)");
  for (const Tuple& alert : alerts) {
    const Value& total = alert.value(1);
    printf("%-12.1f %-12s %-14.1f %.3f\n",
           static_cast<double>(alert.timestamp()) / 1e6,
           alert.value(0).AsString().c_str(), total.ExpectedValue(),
           usp::uncertain::ProbGreaterThan(total, 200.0));
  }
  uint64_t group_in = 0;
  double blocked = 0.0;
  for (const auto& m : exec->MetricsSnapshot()) {
    if (m.name == "total_weight_agg") group_in = m.metrics.tuples_in;
    if (m.name == "rfid_stream") blocked = m.metrics.producer_block_seconds;
  }
  printf("\n%zu violation alerts from %llu location tuples\n", alerts.size(),
         static_cast<unsigned long long>(group_in));
  printf("ingest: auto batch target settled at %zu tuples, producer "
         "blocked %.1f ms on backpressure\n",
         exec->current_target_batch_size(), blocked * 1e3);
  return 0;
}
