// Paper query Q1 end to end (§2.1): fire-code monitoring over an RFID
// warehouse.
//
//   Select Rstream(R2.area, sum(R2.weight))
//   From (Select Rstream(*, area(R.(x,y,z)) As area,
//                        weight(R.tag_id) As weight)
//         From RFIDStream R [Now]) R2 [Range 5 seconds]
//   Group By R2.area
//   Having sum(R2.weight) > 200 pounds
//
// The RFIDStream comes from the full T-operator pipeline: warehouse
// simulator -> particle filter -> KL conversion to per-axis Gaussians.
// Because locations are uncertain, area membership is probabilistic; this
// example resolves areas by expected location and reports the violation
// probability P(sum > 200) per emitted group.
//
// Build & run:  ./build/examples/fire_code_monitoring

#include <cstdio>
#include <string>

#include "rfid/model.h"
#include "rfid/transform_operator.h"
#include "stream/basic_operators.h"
#include "stream/group_by.h"
#include "stream/pipeline.h"
#include "uncertain/aggregates.h"
#include "uncertain/sum_strategies.h"

using usp::stream::Tuple;
using usp::stream::Value;

int main() {
  // --- world + T operator ------------------------------------------------
  usp::rfid::WarehouseConfig config;
  config.width_ft = 80.0;
  config.height_ft = 80.0;
  config.shelf_rows = 8;
  config.shelf_cols = 8;
  config.num_objects = 60;
  config.seed = 509;
  usp::rfid::WarehouseSimulator sim(config);
  usp::rfid::RfidTransformOperator::Options t_opts;
  t_opts.filter.particles_per_object = 64;
  usp::rfid::RfidTransformOperator t_op(config.num_objects,
                                        sim.shelf_positions(),
                                        config.sensing, t_opts);

  // Object weights by tag id: a handful of heavy pallets, the rest light.
  std::vector<double> weight_by_tag(config.num_objects);
  for (size_t i = 0; i < weight_by_tag.size(); ++i) {
    weight_by_tag[i] = (i % 7 == 0) ? 120.0 : 25.0;
  }

  // --- Q1 pipeline --------------------------------------------------------
  // Inner select: annotate area (10 ft grid cells) and weight.
  usp::stream::Pipeline q1;
  q1.Add(std::make_unique<usp::stream::MapOperator>(
      "annotate_area_weight",
      [&weight_by_tag](const Tuple& t) -> usp::common::Result<Tuple> {
        Tuple out = t;
        const double x = t.value(1).AsDistribution()->Mean();
        const double y = t.value(2).AsDistribution()->Mean();
        out.AppendValue(Value("area_" + std::to_string(int(x / 10.0)) + "_" +
                              std::to_string(int(y / 10.0))));
        out.AppendValue(
            Value(weight_by_tag[size_t(t.value(0).AsInt())]));
        return out;
      }));
  // Outer select: 5 s window, group by area, SUM(weight), HAVING > 200 lb
  // with 50% confidence.
  usp::uncertain::CfApproxSum sum_strategy;
  q1.Add(std::make_unique<usp::stream::GroupByAggregateOperator>(
      "q1_group_sum", usp::stream::WindowSpec::Tumbling(5'000'000),
      [](const Tuple& t) { return t.value(3).AsString(); },
      std::vector<usp::stream::AggregateSpec>{
          usp::uncertain::MakeSumAggregate("total_weight", 4,
                                           &sum_strategy)},
      usp::uncertain::MakeHavingProbGreater(1, 200.0, 0.5)));

  // --- run 2 simulated minutes -------------------------------------------
  printf("== Q1: fire-code monitoring (areas over 200 lb) ==\n\n");
  usp::stream::VectorCollector alerts;
  usp::stream::VectorCollector locations;
  for (int scan = 0; scan < 240; ++scan) {
    locations.Clear();
    if (auto st = t_op.ProcessReading(sim.Step(), &locations); !st.ok()) {
      fprintf(stderr, "T operator failed: %s\n", st.ToString().c_str());
      return 1;
    }
    for (const Tuple& t : locations.tuples()) {
      if (auto st = q1.Push(t, &alerts); !st.ok()) {
        fprintf(stderr, "pipeline failed: %s\n", st.ToString().c_str());
        return 1;
      }
    }
  }
  (void)q1.Close(&alerts);

  printf("%-12s %-12s %-14s %s\n", "time(s)", "area", "E[weight](lb)",
         "P(weight > 200)");
  for (const Tuple& alert : alerts.tuples()) {
    const Value& total = alert.value(1);
    printf("%-12.1f %-12s %-14.1f %.3f\n",
           static_cast<double>(alert.timestamp()) / 1e6,
           alert.value(0).AsString().c_str(), total.ExpectedValue(),
           usp::uncertain::ProbGreaterThan(total, 200.0));
  }
  printf("\n%zu violation alerts from %llu location tuples\n",
         alerts.tuples().size(),
         static_cast<unsigned long long>(q1.op(1).metrics().tuples_in));
  return 0;
}
