// The CASA epoch loop (§2.2, Figure 1): raw pulses -> averaged moment data
// (with MA-CLT uncertainty, §4.4) -> polar-to-Cartesian merge of two
// radars -> tornado detection with per-detection probabilities.
//
// Also prints the per-stage uncertainty report that motivates the paper:
// how much velocity variance the averaging step introduces at each
// averaging size, and what the merge step recovers.
//
// Build & run:  ./build/examples/radar_pipeline

#include <cmath>
#include <cstdio>

#include "query/planner.h"
#include "query/query.h"
#include "radar/experiment.h"
#include "radar/grid.h"
#include "radar/moments.h"
#include "radar/pulse_simulator.h"
#include "radar/stream_adapter.h"
#include "radar/tornado_detector.h"

using namespace usp::radar;

namespace {

// One radar's epoch: generate pulses for `seconds`, produce moment beams.
std::vector<MomentBeam> RunRadar(const RadarSite& site, const WindField& wind,
                                 size_t averaging, double seconds,
                                 uint64_t seed, double* data_mb) {
  PulseSimConfig config;
  config.site = site;
  config.num_gates = 600;
  config.seed = seed;
  PulseSimulator sim(config, wind);
  MomentEstimator::Options mopts;
  mopts.averaging_size = averaging;
  MomentEstimator estimator(mopts);
  const size_t pulses = static_cast<size_t>(seconds * kPulsesPerSecond);
  for (size_t i = 0; i < pulses; ++i) {
    (void)estimator.AddPulse(sim.NextPulse());
  }
  *data_mb = static_cast<double>(estimator.beams().size() *
                                 MomentEstimator::BeamBytes(600)) /
             (1024.0 * 1024.0);
  return std::move(estimator.beams());
}

double MeanVelocityVariance(const std::vector<MomentBeam>& beams) {
  double total = 0.0;
  size_t count = 0;
  for (const auto& b : beams) {
    for (const auto& g : b.gates) {
      total += g.velocity_variance;
      ++count;
    }
  }
  return count ? total / static_cast<double>(count) : 0.0;
}

}  // namespace

int main() {
  // Two vortices observed by two radars with overlapping coverage.
  Table1Config scene;
  scene.num_vortices = 2;
  const WindField wind = MakeTornadicWindField(scene);
  const RadarSite radar_a{0.0, 0.0};
  const RadarSite radar_b{0.0, 30000.0};

  printf("== CASA-style epoch: pulses -> moments -> merge -> detect ==\n\n");
  printf("scene: %zu vortices at", wind.vortices.size());
  for (const auto& v : wind.vortices) {
    printf(" (%.0f, %.0f)m", v.x_m, v.y_m);
  }
  printf("\n\n");
  printf("%-10s %-12s %-14s %-12s %-12s %s\n", "avg size", "data (MB)",
         "vel var (avg)", "detections", "mean P(det)", "epoch verdict");

  TornadoDetector detector{TornadoDetector::Options{}};
  for (size_t averaging : {40, 100, 500}) {
    double mb_a = 0.0, mb_b = 0.0;
    const auto beams_a =
        RunRadar(radar_a, wind, averaging, 10.0, 101, &mb_a);
    const auto beams_b =
        RunRadar(radar_b, wind, averaging, 10.0, 202, &mb_b);

    // Merge both radars into one Cartesian grid (the §2.2 "merged data"
    // stage). Detection itself runs per radar in polar space; the grid is
    // what downstream meteorological algorithms consume.
    VoxelGrid grid({-2000.0, 40000.0, -2000.0, 32000.0, 250.0});
    for (const auto& b : beams_a) (void)grid.AddBeam(radar_a, b);
    for (const auto& b : beams_b) (void)grid.AddBeam(radar_b, b);

    const auto det_a = detector.DetectInScan(beams_a);
    const auto det_b = detector.DetectInScan(beams_b);
    double prob = 0.0;
    for (const auto& d : det_a) prob += d.probability;
    for (const auto& d : det_b) prob += d.probability;
    const size_t detections = det_a.size() + det_b.size();
    if (detections > 0) prob /= static_cast<double>(detections);

    printf("%-10zu %-12.2f %-14.4f %-12zu %-12.2f %s\n", averaging,
           mb_a + mb_b, MeanVelocityVariance(beams_a), detections, prob,
           detections > 0 ? "TORNADO WARNING" : "no detection");
  }

  // --- the same moment stream through a declared fan-out plan -------------
  // One radar's scan becomes a tuple batch (velocity carries the MA-CLT
  // Gaussian) feeding a fan-out plan: every gate is screened for storm
  // reflectivity and, independently, for tornado-strength velocity.
  // Branching one Query cursor twice declares the fan-out; the planner
  // compiles the shared plan to one DAG:
  //
  //           /-> speed map -> storm_filter -> storm_cells
  //   scan --+
  //           \-> velocity_filter -> fast_cells
  //
  // The storm branch also shows the planner's filter pushdown: the speed
  // map declares it preserves the 5 gate attributes (it only APPENDS
  // E[|v|]), and the filter declares it reads only attribute 2
  // (reflectivity), so the planner runs the filter FIRST — the map only
  // annotates gates that survive. The decision is visible in the plan
  // summary below.
  {
    double mb = 0.0;
    const auto beams = RunRadar(radar_a, wind, 100, 10.0, 101, &mb);
    BeamTupleOptions topts;
    topts.min_reflectivity_db = -20.0;
    auto batch = ScanToBatch(beams, topts);
    if (!batch.ok()) {
      fprintf(stderr, "adapter failed: %s\n",
              batch.status().ToString().c_str());
      return 1;
    }
    auto scan = usp::query::Query::From("moment_stream", 5);
    auto storm =
        scan.Map("annotate_speed",
                 [](const usp::stream::Tuple& t)
                     -> usp::common::Result<usp::stream::Tuple> {
                   usp::stream::Tuple out = t;
                   out.AppendValue(usp::stream::Value(
                       std::fabs(t.value(3).AsDistribution()->Mean())));
                   return out;
                 },
                 /*output_arity=*/6, /*preserved_prefix=*/5)
            .Filter("storm_reflectivity",
                    [](const usp::stream::Tuple& t) {
                      return t.value(2).AsDouble() > 20.0;
                    },
                    /*reads_attrs=*/{2})
            .Sink("storm_cells");
    auto fast = scan.Filter("tornadic_velocity",
                            [](const usp::stream::Tuple& t) {
                              return std::fabs(
                                         t.value(3).AsDistribution()->Mean()) >
                                     20.0;
                            })
                    .Sink("fast_cells");
    (void)storm;  // both branches live in the one shared plan
    auto exec_or = fast.Compile();
    if (!exec_or.ok()) {
      fprintf(stderr, "compile failed: %s\n",
              exec_or.status().ToString().c_str());
      return 1;
    }
    auto exec = exec_or.MoveValueUnsafe();
    printf("\nstream plan: %s\n", exec->summary().ToString().c_str());
    if (auto st = exec->PushBatch(exec->source("moment_stream"),
                                  batch.value());
        !st.ok()) {
      fprintf(stderr, "plan failed: %s\n", st.ToString().c_str());
      return 1;
    }
    (void)exec->Finish();
    uint64_t map_in = 0;
    for (const auto& m : exec->MetricsSnapshot()) {
      if (m.name == "annotate_speed") map_in = m.metrics.tuples_in;
    }
    printf("stream plan (fan-out over one 10 s scan): %zu gate tuples -> "
           "%zu storm cells, %zu tornadic-velocity cells\n",
           batch.value().size(), exec->Result("storm_cells").size(),
           exec->Result("fast_cells").size());
    printf("filter pushdown: the speed map annotated only %llu of %zu "
           "gates (the reflectivity filter ran first)\n",
           static_cast<unsigned long long>(map_in), batch.value().size());
  }

  printf("\nNote the Table 1 tradeoff: aggressive averaging shrinks the\n"
         "data (and the per-voxel variance, since more pulses average\n"
         "out noise) but smears the velocity couplet across beams until\n"
         "the detector goes blind -- certainty about a field too coarse\n"
         "to contain the tornado.\n");
  return 0;
}
