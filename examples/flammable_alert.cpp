// Paper query Q2 end to end (§2.1): alert when a flammable object sits in
// a hot area.
//
//   Select Rstream(R.tag_id, R.(x,y,z), T.temp)
//   From RFIDStream [Range 3 seconds] as R,
//        TempStream [Range 3 seconds] as T
//   Where object_type(R.tag_id) = 'flammable' and T.temp > 60C and
//         loc_equals(R.(x,y,z), T.(x,y,z))
//
// Both inputs are uncertain: object locations carry pdfs from the RFID T
// operator, temperatures carry sensor-noise pdfs. loc_equals becomes a
// probabilistic predicate and every alert carries a match probability and
// a temperature-exceedance probability.
//
// The fan-in shape is declared with two builders joined into one plan —
//
//   rfid_src -> flammable_filter --+
//                                  +-> join -> p_hot -> hot filter -> sink
//   temp_src ----------------------+
//
// — and the planner compiles it to the physical runtime (single shard: a
// probabilistic join has no exact key to hash-partition on). The two
// sensor feeds are real parallel producers here: the RFID pipeline and
// the temperature grid each push from THEIR OWN thread through their own
// ingest lane (num_ingest_lanes = 2), the multi-producer shape the
// engine's lock-free ingest rings exist for. The join tolerates the
// resulting cross-feed skew — each side expires against the other side's
// clock — so the alert set is the same as a single-threaded run.
//
// Build & run:  ./build/examples/flammable_alert

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "query/planner.h"
#include "query/query.h"
#include "rfid/model.h"
#include "rfid/transform_operator.h"
#include "stats/gaussian.h"
#include "uncertain/join_predicates.h"
#include "uncertain/selection.h"

using usp::stats::DistributionPtr;
using usp::stream::Tuple;
using usp::stream::Value;

int main() {
  // --- RFID side -----------------------------------------------------------
  usp::rfid::WarehouseConfig config;
  config.width_ft = 60.0;
  config.height_ft = 60.0;
  config.shelf_rows = 6;
  config.shelf_cols = 6;
  config.num_objects = 40;
  config.seed = 1234;
  usp::rfid::WarehouseSimulator sim(config);
  usp::rfid::RfidTransformOperator::Options t_opts;
  t_opts.filter.particles_per_object = 64;
  usp::rfid::RfidTransformOperator t_op(config.num_objects,
                                        sim.shelf_positions(),
                                        config.sensing, t_opts);

  // --- temperature side ------------------------------------------------
  // A thermal hotspot around (15, 15) ft; sensors on a 15 ft grid report
  // every 2 s with +-1.5 C noise modeled as a Gaussian pdf per tuple.
  usp::common::Rng temp_rng(7);
  const auto temp_at = [](double x, double y) {
    const double d2 = (x - 15.0) * (x - 15.0) + (y - 15.0) * (y - 15.0);
    return 25.0 + 55.0 * std::exp(-d2 / (2.0 * 12.0 * 12.0));
  };

  // --- Q2, declared -------------------------------------------------------
  usp::uncertain::EqualityJoinSpec spec;
  spec.left_attrs = {1, 2};   // object (x, y)
  spec.right_attrs = {0, 1};  // sensor (x, y)
  spec.eps = 8.0;             // co-location tolerance (ft)
  spec.min_confidence = 0.5;

  auto rfid = usp::query::Query::From("rfid_stream", 3);
  auto temps = usp::query::Query::From("temp_stream", 3);
  auto q2 =
      rfid.Filter("flammable",
                  [](const Tuple& t) { return t.value(0).AsInt() % 3 == 0; })
          .Join(temps, 3'000'000,
                usp::uncertain::MakeProbabilisticEqualityMatch(spec), "q2")
          // HAVING-style tail: annotate P(temp > 60 C), keep >= 90%.
          .Map("p_hot",
               [](const Tuple& t) -> usp::common::Result<Tuple> {
                 Tuple out = t;
                 out.AppendValue(Value(usp::uncertain::PredicateProbability(
                     t.value(5), usp::uncertain::PredicateOp::kGreaterThan,
                     60.0)));
                 return out;
               })
          .Filter("hot",
                  [](const Tuple& t) { return t.value(7).AsDouble() >= 0.9; })
          .Sink("alerts");

  // Two ingest lanes: the planner routes rfid_stream and temp_stream to
  // their own lane, so the two feed threads below never share a queue (a
  // lock-free SPSC ring pair per lane connects them to the worker).
  usp::query::PlannerOptions popts;
  popts.num_ingest_lanes = 2;
  auto exec_or = q2.Compile(popts);
  if (!exec_or.ok()) {
    fprintf(stderr, "compile failed: %s\n",
            exec_or.status().ToString().c_str());
    return 1;
  }
  auto exec = exec_or.MoveValueUnsafe();
  const auto rfid_src = exec->source("rfid_stream");
  const auto temp_src = exec->source("temp_stream");

  printf("== Q2: flammable objects in hot areas ==\n");
  printf("plan: %s\n\n", exec->summary().ToString().c_str());

  // The simulator and particle filter are sequential, so the feeds are
  // materialised first; the pushing — the part the runtime parallelises —
  // then happens from one thread per sensor.
  std::vector<usp::stream::TupleBatch> rfid_feed;
  std::vector<usp::stream::TupleBatch> temp_feed;
  for (int scan = 0; scan < 240; ++scan) {
    auto locations = t_op.ProcessReadingBatch(sim.Step());
    if (!locations.ok()) {
      fprintf(stderr, "T operator failed: %s\n",
              locations.status().ToString().c_str());
      return 1;
    }
    rfid_feed.push_back(locations.MoveValueUnsafe());
    // Temperature tuple batch every 4 scans (2 s).
    if (scan % 4 == 0) {
      const int64_t ts = static_cast<int64_t>(sim.now_s() * 1e6);
      usp::stream::TupleBatch temps_batch;
      for (double x = 7.5; x < config.width_ft; x += 15.0) {
        for (double y = 7.5; y < config.height_ft; y += 15.0) {
          const double measured =
              temp_at(x, y) + temp_rng.Gaussian(0.0, 0.8);
          Tuple temp(ts,
                     {Value(x), Value(y),
                      Value(DistributionPtr(
                          std::make_shared<usp::stats::Gaussian>(measured,
                                                                 1.5)))});
          temp.InitBaseLineage();
          temps_batch.Append(std::move(temp));
        }
      }
      temp_feed.push_back(std::move(temps_batch));
    }
  }
  auto push_feed = [&exec](usp::stream::ExecGraph::NodeId source,
                           std::vector<usp::stream::TupleBatch>* feed) {
    for (usp::stream::TupleBatch& batch : *feed) {
      if (auto st = exec->PushBatch(source, std::move(batch)); !st.ok()) {
        fprintf(stderr, "plan failed: %s\n", st.ToString().c_str());
        return;
      }
    }
  };
  std::thread rfid_thread(push_feed, rfid_src, &rfid_feed);
  std::thread temp_thread(push_feed, temp_src, &temp_feed);
  rfid_thread.join();
  temp_thread.join();

  // --- sensor-outage demo: the idle-source watermark fix ------------------
  // The RFID readers go dark for 60 simulated seconds while temperatures
  // keep streaming. The join expires each side against the OTHER side's
  // clock, so before watermarks the silent RFID feed froze the
  // temperature buffer's expiry and it grew without bound — exactly what
  // the buffered_bytes gauge below shows. One idle-source watermark
  // ("RFID time has reached T, just no data") releases it.
  auto q2_buffered = [&exec] {
    for (const auto& m : exec->MetricsSnapshot()) {
      if (m.name == "q2") return m.metrics.buffered_bytes;
    }
    return uint64_t{0};
  };
  int64_t silent_ts = static_cast<int64_t>(sim.now_s() * 1e6);
  for (int tick = 0; tick < 30; ++tick) {  // 2 s of readings per tick
    silent_ts += 2'000'000;
    usp::stream::TupleBatch temps_batch;
    for (double x = 7.5; x < config.width_ft; x += 15.0) {
      for (double y = 7.5; y < config.height_ft; y += 15.0) {
        Tuple temp(silent_ts,
                   {Value(x), Value(y),
                    Value(DistributionPtr(std::make_shared<
                                          usp::stats::Gaussian>(
                        temp_at(x, y) + temp_rng.Gaussian(0.0, 0.8),
                        1.5)))});
        temp.InitBaseLineage();
        temps_batch.Append(std::move(temp));
      }
    }
    if (auto st = exec->PushBatch(temp_src, std::move(temps_batch));
        !st.ok()) {
      fprintf(stderr, "plan failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  // The ingest rings drain asynchronously; give the worker a moment to
  // absorb the backlog before sampling the gauge (bounded wait, not a
  // correctness dependency — Finish() would flush regardless).
  uint64_t grown = 0;
  for (int spin = 0; spin < 2000; ++spin) {
    const uint64_t now = q2_buffered();
    if (now > 0 && now == grown) break;
    grown = now;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The outage monitor announces RFID progress without data; the join may
  // now expire every buffered temperature older than the watermark minus
  // the join range.
  if (auto st = exec->PushWatermark(rfid_src, silent_ts); !st.ok()) {
    fprintf(stderr, "watermark failed: %s\n", st.ToString().c_str());
    return 1;
  }
  uint64_t released = grown;
  for (int spin = 0; spin < 2000 && released * 4 > grown; ++spin) {
    released = q2_buffered();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  printf("sensor outage: 60 s of temps against a silent RFID feed buffered"
         " %llu bytes in the join;\n"
         "one idle-source watermark shrank that to %llu bytes (plan: %s)\n\n",
         static_cast<unsigned long long>(grown),
         static_cast<unsigned long long>(released),
         exec->summary().watermark_period_us > 0 ? "watermarks on"
                                                 : "watermarks off");

  (void)exec->Finish();

  printf("%-8s %-7s %-18s %-12s %-11s %s\n", "time(s)", "tag",
         "E[location] (ft)", "E[temp] (C)", "P(match)", "P(temp > 60)");
  const auto& alerts = exec->Result("alerts");
  size_t shown = 0;
  for (const Tuple& a : alerts) {
    if (++shown > 12) break;  // keep the demo output short
    printf("%-8.1f %-7lld (%5.1f, %5.1f)     %-12.1f %-11.2f %.3f\n",
           static_cast<double>(a.timestamp()) / 1e6,
           static_cast<long long>(a.value(0).AsInt()),
           a.value(1).AsDistribution()->Mean(),
           a.value(2).AsDistribution()->Mean(),
           a.value(5).AsDistribution()->Mean(), a.value(6).AsDouble(),
           a.value(7).AsDouble());
  }
  uint64_t join_in = 0, join_out = 0;
  for (const auto& m : exec->MetricsSnapshot()) {
    if (m.name == "q2") {
      join_in = m.metrics.tuples_in;
      join_out = m.metrics.tuples_out;
    }
  }
  printf("\n%zu alerts in 120 simulated seconds "
         "(join saw %llu tuples in, %llu matches)\n",
         alerts.size(), static_cast<unsigned long long>(join_in),
         static_cast<unsigned long long>(join_out));
  return 0;
}
