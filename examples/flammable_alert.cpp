// Paper query Q2 end to end (§2.1): alert when a flammable object sits in
// a hot area.
//
//   Select Rstream(R.tag_id, R.(x,y,z), T.temp)
//   From RFIDStream [Range 3 seconds] as R,
//        TempStream [Range 3 seconds] as T
//   Where object_type(R.tag_id) = 'flammable' and T.temp > 60C and
//         loc_equals(R.(x,y,z), T.(x,y,z))
//
// Both inputs are uncertain: object locations carry pdfs from the RFID T
// operator, temperatures carry sensor-noise pdfs. loc_equals becomes a
// probabilistic predicate and every alert carries a match probability and
// a temperature-exceedance probability.
//
// The plan runs as a box-arrow ExecGraph with fan-in: two sources (RFID
// and temperature) meet at a sliding-window join node —
//
//   rfid_src -> flammable_filter -\
//                                  join -> hot_filter -> sink
//   temp_src ---------------------/
//
// Build & run:  ./build/examples/flammable_alert

#include <cstdio>

#include "rfid/model.h"
#include "rfid/transform_operator.h"
#include "stats/gaussian.h"
#include "stream/basic_operators.h"
#include "stream/exec_graph.h"
#include "stream/join.h"
#include "uncertain/join_predicates.h"
#include "uncertain/selection.h"

using usp::stats::DistributionPtr;
using usp::stream::Tuple;
using usp::stream::Value;

int main() {
  // --- RFID side -----------------------------------------------------------
  usp::rfid::WarehouseConfig config;
  config.width_ft = 60.0;
  config.height_ft = 60.0;
  config.shelf_rows = 6;
  config.shelf_cols = 6;
  config.num_objects = 40;
  config.seed = 1234;
  usp::rfid::WarehouseSimulator sim(config);
  usp::rfid::RfidTransformOperator::Options t_opts;
  t_opts.filter.particles_per_object = 64;
  usp::rfid::RfidTransformOperator t_op(config.num_objects,
                                        sim.shelf_positions(),
                                        config.sensing, t_opts);

  // --- temperature side ------------------------------------------------
  // A thermal hotspot around (15, 15) ft; sensors on a 15 ft grid report
  // every 2 s with +-1.5 C noise modeled as a Gaussian pdf per tuple.
  usp::common::Rng temp_rng(7);
  const auto temp_at = [](double x, double y) {
    const double d2 = (x - 15.0) * (x - 15.0) + (y - 15.0) * (y - 15.0);
    return 25.0 + 55.0 * std::exp(-d2 / (2.0 * 12.0 * 12.0));
  };

  // --- Q2 plan as a fan-in DAG -------------------------------------------
  usp::uncertain::EqualityJoinSpec spec;
  spec.left_attrs = {1, 2};   // object (x, y)
  spec.right_attrs = {0, 1};  // sensor (x, y)
  spec.eps = 8.0;             // co-location tolerance (ft)
  spec.min_confidence = 0.5;

  auto graph = std::make_unique<usp::stream::ExecGraph>();
  const auto rfid_src = graph->AddSource("rfid_stream");
  const auto temp_src = graph->AddSource("temp_stream");
  const auto flammable = graph->AddOperator(
      rfid_src, std::make_unique<usp::stream::FilterOperator>(
                    "flammable", [](const Tuple& t) {
                      return t.value(0).AsInt() % 3 == 0;
                    }));
  const auto join = graph->AddJoin(
      flammable, temp_src,
      std::make_unique<usp::stream::SlidingWindowJoin>(
          "q2", 3'000'000,
          usp::uncertain::MakeProbabilisticEqualityMatch(spec)));
  // HAVING-style tail: annotate P(temp > 60 C), keep alerts above 90%.
  const auto annotate = graph->AddOperator(
      join, usp::uncertain::MakeProbabilityAnnotator(
                "p_hot", 5, usp::uncertain::PredicateOp::kGreaterThan, 60.0));
  const auto hot = graph->AddOperator(
      annotate, std::make_unique<usp::stream::FilterOperator>(
                    "hot", [](const Tuple& t) {
                      return t.value(7).AsDouble() >= 0.9;
                    }));
  const auto sink = graph->AddSink(hot, "alerts");
  if (auto st = graph->Validate(); !st.ok()) {
    fprintf(stderr, "invalid plan: %s\n", st.ToString().c_str());
    return 1;
  }
  usp::stream::DagExecutor exec(std::move(graph));

  printf("== Q2: flammable objects in hot areas ==\n\n");

  for (int scan = 0; scan < 240; ++scan) {
    // RFID readings -> location tuple batch -> left source.
    auto locations = t_op.ProcessReadingBatch(sim.Step());
    if (!locations.ok()) {
      fprintf(stderr, "T operator failed: %s\n",
              locations.status().ToString().c_str());
      return 1;
    }
    if (auto st = exec.PushBatch(rfid_src, locations.value()); !st.ok()) {
      fprintf(stderr, "plan failed: %s\n", st.ToString().c_str());
      return 1;
    }
    // Temperature tuple batch every 4 scans (2 s) -> right source.
    if (scan % 4 == 0) {
      const int64_t ts = static_cast<int64_t>(sim.now_s() * 1e6);
      usp::stream::TupleBatch temps;
      for (double x = 7.5; x < config.width_ft; x += 15.0) {
        for (double y = 7.5; y < config.height_ft; y += 15.0) {
          const double measured =
              temp_at(x, y) + temp_rng.Gaussian(0.0, 0.8);
          Tuple temp(ts,
                     {Value(x), Value(y),
                      Value(DistributionPtr(
                          std::make_shared<usp::stats::Gaussian>(measured,
                                                                 1.5)))});
          temp.InitBaseLineage();
          temps.Append(std::move(temp));
        }
      }
      if (auto st = exec.PushBatch(temp_src, temps); !st.ok()) {
        fprintf(stderr, "plan failed: %s\n", st.ToString().c_str());
        return 1;
      }
    }
  }
  (void)exec.Close();

  printf("%-8s %-7s %-18s %-12s %-11s %s\n", "time(s)", "tag",
         "E[location] (ft)", "E[temp] (C)", "P(match)", "P(temp > 60)");
  const auto& alerts = exec.sink_output(sink);
  size_t shown = 0;
  for (const Tuple& a : alerts) {
    if (++shown > 12) break;  // keep the demo output short
    printf("%-8.1f %-7lld (%5.1f, %5.1f)     %-12.1f %-11.2f %.3f\n",
           static_cast<double>(a.timestamp()) / 1e6,
           static_cast<long long>(a.value(0).AsInt()),
           a.value(1).AsDistribution()->Mean(),
           a.value(2).AsDistribution()->Mean(),
           a.value(5).AsDistribution()->Mean(), a.value(6).AsDouble(),
           a.value(7).AsDouble());
  }
  uint64_t join_in = 0, join_out = 0;
  for (const auto& m : exec.MetricsSnapshot()) {
    if (m.name == "q2") {
      join_in = m.metrics.tuples_in;
      join_out = m.metrics.tuples_out;
    }
  }
  printf("\n%zu alerts in 120 simulated seconds "
         "(join saw %llu tuples in, %llu matches)\n",
         alerts.size(), static_cast<unsigned long long>(join_in),
         static_cast<unsigned long long>(join_out));
  return 0;
}
