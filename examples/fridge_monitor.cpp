// Fridge monitor: ONE temperature feed, many standing subscriptions.
//
// The multiplexing scenario: a facility streams uncertain temperature
// readings (sensor noise -> Gaussian per reading) from many fridges, and
// every user registers a personal standing query over the SAME feed:
//
//   "alert me when P(avg temp of MY fridge > MY threshold) >= MY bar"
//
// Instead of compiling one plan per user, `CompileMultiplexed` builds ONE
// template plan — one source scan, one window/pane buffer, one aggregate
// per group — and dispatches each emitted group row through a predicate
// index (exact-key hash buckets, an interval tree for key ranges,
// threshold-sorted prefix dispatch for the probability conditions), so
// adding a subscriber costs an index entry, not a plan.
//
// The walkthrough registers per-user thresholds, a range-scoped
// technician, and an everything auditor; streams two windows of
// readings; unsubscribes a user mid-stream; and prints who got alerted
// and why.
//
// Build & run:  ./build/examples/fridge_monitor

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "query/planner.h"
#include "query/query.h"
#include "query/subscription.h"
#include "stats/gaussian.h"
#include "stream/batch.h"
#include "stream/tuple.h"
#include "uncertain/sum_strategies.h"

using usp::query::Query;
using usp::query::Subscription;
using usp::query::SubscriptionSet;
using usp::stats::DistributionPtr;
using usp::stream::Tuple;
using usp::stream::TupleBatch;
using usp::stream::Value;

namespace {

Tuple Reading(int64_t ts_us, int64_t fridge, double mean_f, double sd_f) {
  Tuple t(ts_us, {Value(fridge),
                  Value(DistributionPtr(
                      std::make_shared<usp::stats::Gaussian>(mean_f, sd_f)))});
  t.InitBaseLineage();
  return t;
}

}  // namespace

int main() {
  printf("== fridge monitor: per-user alerts over one shared feed ==\n\n");

  // --- 1. one standing-query TEMPLATE -----------------------------------
  // (fridge_id, temp_pdf) readings; 5-second tumbling windows; AVG temp
  // per fridge. Subscriptions below differ only in scope + threshold, so
  // they all ride this single plan.
  Query feed = Query::From("temps", 2)
                   .Window(usp::stream::WindowSpec::Tumbling(5'000'000))
                   .GroupBy(0)
                   .Avg("avg_temp", 1, usp::uncertain::SumStrategyKind::kClt)
                   .Sink("alerts");

  // --- 2. subscriptions: scope + personal threshold ---------------------
  // Each OnMatch callback fires once per (window, group) row that passes
  // that subscriber's condition — the alert channel.
  auto set = std::make_shared<SubscriptionSet>();
  std::map<usp::query::SubscriptionSet::Id, std::string> who;
  const auto alert = [&who](const char* name) {
    return [name](const Tuple& row) {
      const auto& avg = *row.value(1).AsDistribution();
      // Group keys come out canonicalised as strings ("3" for fridge 3).
      printf("  ALERT %-10s fridge %s window@%lldus: avg %.1fF sd %.2f\n",
             name, row.value(0).AsString().c_str(),
             static_cast<long long>(row.timestamp()), avg.Mean(), avg.Stddev());
    };
  };

  // Alice owns fridge 3 and wants to know when it is PROBABLY above 40F.
  const auto alice = set->Subscribe(Subscription::KeyEquals(Value(int64_t{3}))
                                        .Where(0, 40.0, 0.9)
                                        .OnMatch(alert("alice")));
  who[alice] = "alice";
  // Bob also watches fridge 3 but is paranoid: 38F at 60% confidence.
  const auto bob = set->Subscribe(Subscription::KeyEquals(Value(int64_t{3}))
                                      .Where(0, 38.0, 0.6)
                                      .OnMatch(alert("bob")));
  who[bob] = "bob";
  // The technician patrols fridges 0..9 for hard failures (50F, 95%).
  set->Subscribe(Subscription::KeyInRange(0, 9)
                     .Where(0, 50.0, 0.95)
                     .OnMatch(alert("technician")));
  // The auditor records every closed window of every fridge, no filter.
  set->Subscribe(Subscription::AllGroups().OnMatch(alert("auditor")));
  printf("registered %zu subscriptions\n", set->size());

  // --- 3. compile ONCE, observe the sharing decisions -------------------
  auto mq_or = feed.CompileMultiplexed(set);
  if (!mq_or.ok()) {
    fprintf(stderr, "compile failed: %s\n", mq_or.status().ToString().c_str());
    return 1;
  }
  auto mq = mq_or.MoveValueUnsafe();
  printf("planner decisions: %s\n\n", mq->summary().ToString().c_str());

  // --- 4. window 1: fridge 3 drifts warm --------------------------------
  printf("window 1 (0-5s): fridge 3 drifting to ~41F\n");
  TupleBatch w1;
  w1.Append(Reading(500'000, 3, 39.0, 1.0));
  w1.Append(Reading(1'500'000, 3, 41.0, 1.0));
  w1.Append(Reading(2'500'000, 3, 43.0, 1.0));
  w1.Append(Reading(1'000'000, 7, 36.5, 0.5));  // healthy fridge
  (void)mq->PushBatch(mq->source("temps"), std::move(w1));

  // --- 5. alice unsubscribes; shared state is refcounted ----------------
  // Bob still watches fridge 3, so the exact-key bucket stays live; only
  // when the LAST watcher of a key leaves is its index state released.
  TupleBatch w2;
  w2.Append(Reading(5'500'000, 3, 44.0, 1.0));  // closes window 1
  (void)mq->PushBatch(mq->source("temps"), std::move(w2));
  mq->subscriptions().Unsubscribe(alice);
  printf("\nalice unsubscribed (%zu remain); window 2 (5-10s): still warm\n",
         mq->subscriptions().size());

  TupleBatch w3;
  w3.Append(Reading(6'500'000, 3, 45.0, 1.0));
  w3.Append(Reading(7'000'000, 7, 36.0, 0.5));
  (void)mq->PushBatch(mq->source("temps"), std::move(w3));
  (void)mq->Finish();  // closes window 2: bob + technician + auditor only

  // --- 6. the sink view -------------------------------------------------
  // Every dispatched row also lands in the sink, tagged with the matching
  // subscription id as a trailing column — the audit trail behind the
  // callbacks above.
  printf("\nsink rows (fridge, avg, subscription):\n");
  for (const Tuple& row : mq->Result("alerts")) {
    const auto id = static_cast<usp::query::SubscriptionSet::Id>(
        row.value(row.num_values() - 1).AsInt());
    const auto it = who.find(id);
    printf("  ts %-8lld fridge %s avg %.1fF -> sub %llu (%s)\n",
           static_cast<long long>(row.timestamp()),
           row.value(0).AsString().c_str(),
           row.value(1).AsDistribution()->Mean(),
           static_cast<unsigned long long>(id),
           it == who.end() ? "other" : it->second.c_str());
  }
  return 0;
}
